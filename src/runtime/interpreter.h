#ifndef TSPLIT_RUNTIME_INTERPRETER_H_
#define TSPLIT_RUNTIME_INTERPRETER_H_

// Unconstrained reference interpreter: executes a graph on host tensors in
// schedule order with no memory management at all. This is the ground truth
// the plan-aware functional executor is checked against (a valid plan must
// reproduce these values), and the engine behind the numeric gradient
// tests.

#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/status.h"
#include "core/tensor.h"
#include "graph/graph.h"

namespace tsplit::runtime {

class Interpreter {
 public:
  explicit Interpreter(const Graph* graph) : graph_(graph) {}

  // Binds a value to a source tensor (input / parameter / state).
  Status Bind(TensorId id, Tensor value);

  // Executes every op in schedule order. All source tensors must be bound.
  Status Run();

  // Value of any tensor after Run().
  Result<const Tensor*> ValueOf(TensorId id) const;

  // Releases computed values (bindings stay).
  void ClearComputed();

 private:
  const Graph* graph_;
  std::unordered_map<TensorId, Tensor> values_;
  std::vector<TensorId> bound_;
};

// Convenience: bind every kParameter / kInput tensor of `graph` with
// deterministic pseudo-random values (inputs in [-1, 1], labels as small
// non-negative class ids) and return the bindings. `seed` varies the draw.
std::unordered_map<TensorId, Tensor> MakeRandomBindings(const Graph& graph,
                                                        uint64_t seed);

}  // namespace tsplit::runtime

#endif  // TSPLIT_RUNTIME_INTERPRETER_H_
