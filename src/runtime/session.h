#ifndef TSPLIT_RUNTIME_SESSION_H_
#define TSPLIT_RUNTIME_SESSION_H_

// High-level driver tying the pipeline together:
//   model -> schedule -> profile -> plan -> augmented program -> executor.
// Benches and examples use this to answer the paper's questions: what does
// one iteration cost under planner X on device Y, and what is the largest
// trainable sample / parameter scale?

#include <string>

#include "models/model.h"
#include "planner/plan.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/sim_executor.h"
#include "sim/device.h"

namespace tsplit::runtime {

struct SessionOptions {
  std::string planner_name = "TSPLIT";
  sim::DeviceProfile device = sim::TitanRtx();
  rewrite::ProgramOptions program_options;
  // Budget-aware planners target this fraction of device memory, keeping
  // headroom for runtime transients (recompute checkpoints in flight,
  // allocator fragmentation) their analytic model does not capture.
  double planner_headroom = 0.93;
  // Adds two Adam moment tensors per parameter before planning — the
  // optimizer state the ZeRO-Offload comparison (Tables VI/VII) hinges on.
  bool with_adam_states = false;
};

struct SessionResult {
  planner::Plan plan;
  IterationStats stats;
  size_t planned_peak_bytes = 0;  // planner's own estimate
};

// Plans and simulates one training iteration. Fails (ResourceExhausted /
// OutOfMemory) when the model scale is not trainable under this planner.
Result<SessionResult> SimulateIteration(models::Model* model,
                                        const SessionOptions& options);

// Convenience: build-by-name + simulate; returns NotTrainable errors as-is.
Result<SessionResult> SimulateModel(const std::string& model_name, int batch,
                                    double param_scale,
                                    const SessionOptions& options);

// Largest batch size trainable for `model_name` under `options` (paper
// Table IV / VI: sample scale). Exponential probe + binary search.
Result<int> MaxSampleScale(const std::string& model_name,
                           const SessionOptions& options,
                           int max_batch = 4096);

// Largest parameter scale (channel / hidden multiplier) trainable at a
// fixed batch of 16 (paper Table V / VII). Returns the scale in the
// paper's integer-multiplier units.
Result<int> MaxParamScale(const std::string& model_name,
                          const SessionOptions& options, int max_scale = 256);

// Appends Adam first/second-moment state tensors for every parameter.
void AddAdamStates(models::Model* model);

}  // namespace tsplit::runtime

#endif  // TSPLIT_RUNTIME_SESSION_H_
