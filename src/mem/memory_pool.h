#ifndef TSPLIT_MEM_MEMORY_POOL_H_
#define TSPLIT_MEM_MEMORY_POOL_H_

// Device memory pool (paper §V-D): TSPLIT pre-allocates one large arena and
// serves tensor allocations from it with a best-fit strategy, storing
// micro-tensors in contiguous chunks (§V-C). This pool manages *offsets*
// within a virtual arena — the timing simulator needs only the accounting,
// and the functional executor pairs offsets with real host buffers.
//
// Free blocks are coalesced with neighbours on free. Stats track current /
// peak usage and external fragmentation for the ablation benches.

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace tsplit::mem {

enum class FitPolicy {
  kBestFit = 0,   // smallest free block that fits (default; paper §V-C)
  kFirstFit,      // lowest-offset free block that fits (ablation)
};

struct PoolStats {
  size_t capacity = 0;
  size_t in_use = 0;
  size_t peak_in_use = 0;
  size_t free_bytes = 0;
  size_t largest_free_block = 0;
  size_t num_allocs = 0;
  size_t num_frees = 0;
  size_t failed_allocs = 0;

  // External fragmentation in [0,1]: 1 - largest_free_block / free_bytes.
  double fragmentation() const {
    if (free_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(largest_free_block) /
                     static_cast<double>(free_bytes);
  }
};

class MemoryPool {
 public:
  explicit MemoryPool(size_t capacity, FitPolicy policy = FitPolicy::kBestFit);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  // Allocates `bytes` (rounded up to the 256-byte alignment cuDNN expects);
  // returns the arena offset. Fails with OutOfMemory when no free block
  // fits — callers distinguish "no capacity at all" from fragmentation via
  // stats().
  Result<size_t> Allocate(size_t bytes) TSPLIT_EXCLUDES(mu_);

  // Releases a block previously returned by Allocate.
  Status Free(size_t offset) TSPLIT_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  size_t in_use() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return stats_.in_use;
  }
  size_t free_bytes() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return stats_.free_bytes;
  }
  // Snapshot by value: returning a reference to a guarded member would
  // leak it past the lock (and trip -Wthread-safety-reference).
  PoolStats stats() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return stats_;
  }

  // True if a block of `bytes` could be allocated right now.
  bool CanAllocate(size_t bytes) const TSPLIT_EXCLUDES(mu_);

  // Accounts a transient reservation (an Allocate that would be Freed
  // before the next pool operation) without mutating the free list: fails
  // with OutOfMemory exactly when Allocate would (no free block fits),
  // otherwise folds the would-be usage into peak_in_use and the alloc/free
  // counters. Because Allocate immediately followed by Free restores the
  // free list exactly (the carved block re-coalesces with its neighbours),
  // this is observationally identical to the alloc/free pair — the
  // compiled executor uses it to retire per-compute workspace churn.
  Status AccountTransient(size_t bytes) TSPLIT_EXCLUDES(mu_);

  // Checks internal invariants (no overlap, full coverage, coalesced free
  // list); used by property tests.
  Status CheckConsistency() const TSPLIT_EXCLUDES(mu_);

  std::string DebugString() const TSPLIT_EXCLUDES(mu_);

  static size_t Align(size_t bytes);

 private:
  struct FreeBlock {
    size_t offset;
    size_t size;
    bool operator<(const FreeBlock& o) const {
      return size != o.size ? size < o.size : offset < o.offset;
    }
  };

  void InsertFree(size_t offset, size_t size) TSPLIT_REQUIRES(mu_);
  void EraseFree(size_t offset, size_t size) TSPLIT_REQUIRES(mu_);

  const size_t capacity_;     // immutable after construction; no guard
  const FitPolicy policy_;    // immutable after construction; no guard
  // The pool is shared between the compute thread and the copy engine's
  // worker (swap-out completion releases reservations asynchronously), so
  // every mutable member is guarded.
  mutable core::Mutex mu_;
  PoolStats stats_ TSPLIT_GUARDED_BY(mu_);
  // offset -> size for free blocks (ordered for coalescing / first-fit).
  std::map<size_t, size_t> free_by_offset_ TSPLIT_GUARDED_BY(mu_);
  // (size, offset) ordering for best-fit.
  std::set<FreeBlock> free_by_size_ TSPLIT_GUARDED_BY(mu_);
  // offset -> size for live allocations.
  std::map<size_t, size_t> allocated_ TSPLIT_GUARDED_BY(mu_);
};

}  // namespace tsplit::mem

#endif  // TSPLIT_MEM_MEMORY_POOL_H_
