#include "mem/memory_pool.h"

#include <algorithm>
#include <sstream>

#include "core/logging.h"

namespace tsplit::mem {

namespace {
constexpr size_t kAlignment = 256;
}  // namespace

size_t MemoryPool::Align(size_t bytes) {
  if (bytes == 0) return kAlignment;
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

MemoryPool::MemoryPool(size_t capacity, FitPolicy policy)
    : capacity_(Align(capacity) == capacity ? capacity
                                            : capacity / kAlignment *
                                                  kAlignment),
      policy_(policy) {
  stats_.capacity = capacity_;
  stats_.free_bytes = capacity_;
  if (capacity_ > 0) {
    InsertFree(0, capacity_);
  }
}

void MemoryPool::InsertFree(size_t offset, size_t size) {
  free_by_offset_[offset] = size;
  free_by_size_.insert({offset, size});
  stats_.largest_free_block =
      std::max(stats_.largest_free_block, size);
}

void MemoryPool::EraseFree(size_t offset, size_t size) {
  free_by_offset_.erase(offset);
  free_by_size_.erase({offset, size});
  if (size == stats_.largest_free_block) {
    stats_.largest_free_block =
        free_by_size_.empty() ? 0 : free_by_size_.rbegin()->size;
  }
}

Result<size_t> MemoryPool::Allocate(size_t bytes) {
  core::MutexLock lock(&mu_);
  size_t need = Align(bytes);
  const FreeBlock* chosen = nullptr;
  FreeBlock candidate{0, 0};

  if (policy_ == FitPolicy::kBestFit) {
    // Smallest block with size >= need.
    auto it = free_by_size_.lower_bound(FreeBlock{0, need});
    if (it != free_by_size_.end()) {
      candidate = *it;
      chosen = &candidate;
    }
  } else {
    for (const auto& [offset, size] : free_by_offset_) {
      if (size >= need) {
        candidate = {offset, size};
        chosen = &candidate;
        break;
      }
    }
  }

  if (chosen == nullptr) {
    ++stats_.failed_allocs;
    return Status::OutOfMemory(
        "pool cannot fit " + std::to_string(need) + " bytes (free " +
        std::to_string(stats_.free_bytes) + ", largest block " +
        std::to_string(stats_.largest_free_block) + ")");
  }

  EraseFree(chosen->offset, chosen->size);
  if (chosen->size > need) {
    InsertFree(chosen->offset + need, chosen->size - need);
  }
  allocated_[chosen->offset] = need;
  stats_.in_use += need;
  stats_.free_bytes -= need;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  ++stats_.num_allocs;
  // Recompute largest free block lazily via set max.
  stats_.largest_free_block =
      free_by_size_.empty() ? 0 : free_by_size_.rbegin()->size;
  return chosen->offset;
}

Status MemoryPool::Free(size_t offset) {
  core::MutexLock lock(&mu_);
  auto it = allocated_.find(offset);
  if (it == allocated_.end()) {
    return Status::InvalidArgument("Free of unallocated offset " +
                                   std::to_string(offset));
  }
  size_t size = it->second;
  allocated_.erase(it);
  stats_.in_use -= size;
  stats_.free_bytes += size;
  ++stats_.num_frees;

  // Coalesce with the following free block.
  auto next = free_by_offset_.lower_bound(offset);
  if (next != free_by_offset_.end() && next->first == offset + size) {
    size += next->second;
    EraseFree(next->first, next->second);
  }
  // Coalesce with the preceding free block.
  auto prev = free_by_offset_.lower_bound(offset);
  if (prev != free_by_offset_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) {
      size_t prev_offset = prev->first;
      size_t prev_size = prev->second;
      EraseFree(prev_offset, prev_size);
      offset = prev_offset;
      size += prev_size;
    }
  }
  InsertFree(offset, size);
  stats_.largest_free_block =
      free_by_size_.empty() ? 0 : free_by_size_.rbegin()->size;
  return Status::OK();
}

bool MemoryPool::CanAllocate(size_t bytes) const {
  core::MutexLock lock(&mu_);
  return stats_.largest_free_block >= Align(bytes);
}

Status MemoryPool::AccountTransient(size_t bytes) {
  core::MutexLock lock(&mu_);
  size_t need = Align(bytes);
  if (stats_.largest_free_block < need) {
    ++stats_.failed_allocs;
    return Status::OutOfMemory(
        "pool cannot fit " + std::to_string(need) + " bytes (free " +
        std::to_string(stats_.free_bytes) + ", largest block " +
        std::to_string(stats_.largest_free_block) + ")");
  }
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use + need);
  ++stats_.num_allocs;
  ++stats_.num_frees;
  return Status::OK();
}

Status MemoryPool::CheckConsistency() const {
  core::MutexLock lock(&mu_);
  // Walk free + allocated blocks; together they must tile [0, capacity)
  // with no overlap, and no two free blocks may be adjacent.
  std::map<size_t, std::pair<size_t, bool>> blocks;  // offset -> (size, free)
  for (const auto& [offset, size] : free_by_offset_) {
    blocks[offset] = {size, true};
  }
  for (const auto& [offset, size] : allocated_) {
    if (blocks.count(offset)) {
      return Status::Internal("block both free and allocated");
    }
    blocks[offset] = {size, false};
  }
  size_t cursor = 0;
  bool prev_free = false;
  for (const auto& [offset, info] : blocks) {
    if (offset != cursor) {
      return Status::Internal("gap or overlap at offset " +
                              std::to_string(cursor));
    }
    if (info.second && prev_free) {
      return Status::Internal("uncoalesced adjacent free blocks at " +
                              std::to_string(offset));
    }
    cursor = offset + info.first;
    prev_free = info.second;
  }
  if (cursor != capacity_) {
    return Status::Internal("blocks do not cover the arena");
  }
  if (free_by_offset_.size() != free_by_size_.size()) {
    return Status::Internal("free index size mismatch");
  }
  return Status::OK();
}

std::string MemoryPool::DebugString() const {
  core::MutexLock lock(&mu_);
  std::ostringstream os;
  os << "MemoryPool(capacity=" << capacity_ << ", in_use=" << stats_.in_use
     << ", peak=" << stats_.peak_in_use << ", free=" << stats_.free_bytes
     << ", largest_free=" << stats_.largest_free_block
     << ", frag=" << stats_.fragmentation()
     << ", allocs=" << stats_.num_allocs << ", frees=" << stats_.num_frees
     << ", failed=" << stats_.failed_allocs << ")";
  return os.str();
}

}  // namespace tsplit::mem
