#ifndef TSPLIT_MEM_HOST_STORE_H_
#define TSPLIT_MEM_HOST_STORE_H_

// Host-side staging area for swapped-out tensors. The paper treats CPU
// memory as a temporary cache for evicted feature maps (§II); this class is
// that cache. The timing simulator uses only the byte accounting; the
// functional executor also stores the real payload.
//
// The store is shared between the compute thread and the copy engine's
// worker (async swap-out Puts from the worker, swap-in Takes from the
// compute thread), so the entry map is internally locked.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/status.h"
#include "core/tensor.h"
#include "core/thread_annotations.h"

namespace tsplit::mem {

class HostStore {
 public:
  explicit HostStore(size_t capacity_bytes = SIZE_MAX)
      : capacity_(capacity_bytes) {}

  // Registers `bytes` for `key`, optionally with a payload tensor.
  Status Put(int64_t key, size_t bytes, Tensor payload = Tensor())
      TSPLIT_EXCLUDES(mu_);

  // True if `key` is currently staged on the host.
  bool Contains(int64_t key) const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return entries_.count(key) > 0;
  }

  // Retrieves the payload without removing it. The pointer stays valid
  // until the entry's Take: payloads are immutable while staged, and only
  // the thread that fenced the swap-out (and thus observes the entry)
  // takes it back.
  Result<const Tensor*> Peek(int64_t key) const TSPLIT_EXCLUDES(mu_);

  // Removes `key`, returning its payload (empty tensor if none stored).
  Result<Tensor> Take(int64_t key) TSPLIT_EXCLUDES(mu_);

  size_t in_use() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return in_use_;
  }
  size_t capacity() const { return capacity_; }
  size_t num_entries() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return entries_.size();
  }
  size_t peak_in_use() const TSPLIT_EXCLUDES(mu_) {
    core::MutexLock lock(&mu_);
    return peak_in_use_;
  }

 private:
  struct Entry {
    size_t bytes;
    Tensor payload;
  };

  const size_t capacity_;  // immutable after construction; no guard
  mutable core::Mutex mu_;
  size_t in_use_ TSPLIT_GUARDED_BY(mu_) = 0;
  size_t peak_in_use_ TSPLIT_GUARDED_BY(mu_) = 0;
  std::unordered_map<int64_t, Entry> entries_ TSPLIT_GUARDED_BY(mu_);
};

}  // namespace tsplit::mem

#endif  // TSPLIT_MEM_HOST_STORE_H_
