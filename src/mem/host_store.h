#ifndef TSPLIT_MEM_HOST_STORE_H_
#define TSPLIT_MEM_HOST_STORE_H_

// Host-side staging area for swapped-out tensors. The paper treats CPU
// memory as a temporary cache for evicted feature maps (§II); this class is
// that cache. The timing simulator uses only the byte accounting; the
// functional executor also stores the real payload.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/status.h"
#include "core/tensor.h"

namespace tsplit::mem {

class HostStore {
 public:
  explicit HostStore(size_t capacity_bytes = SIZE_MAX)
      : capacity_(capacity_bytes) {}

  // Registers `bytes` for `key`, optionally with a payload tensor.
  Status Put(int64_t key, size_t bytes, Tensor payload = Tensor());

  // True if `key` is currently staged on the host.
  bool Contains(int64_t key) const { return entries_.count(key) > 0; }

  // Retrieves the payload without removing it.
  Result<const Tensor*> Peek(int64_t key) const;

  // Removes `key`, returning its payload (empty tensor if none stored).
  Result<Tensor> Take(int64_t key);

  size_t in_use() const { return in_use_; }
  size_t capacity() const { return capacity_; }
  size_t num_entries() const { return entries_.size(); }
  size_t peak_in_use() const { return peak_in_use_; }

 private:
  struct Entry {
    size_t bytes;
    Tensor payload;
  };

  size_t capacity_;
  size_t in_use_ = 0;
  size_t peak_in_use_ = 0;
  std::unordered_map<int64_t, Entry> entries_;
};

}  // namespace tsplit::mem

#endif  // TSPLIT_MEM_HOST_STORE_H_
