#include "mem/host_store.h"

namespace tsplit::mem {

Status HostStore::Put(int64_t key, size_t bytes, Tensor payload) {
  core::MutexLock lock(&mu_);
  if (entries_.count(key)) {
    return Status::FailedPrecondition("host store already holds key " +
                                      std::to_string(key));
  }
  if (in_use_ + bytes > capacity_) {
    return Status::OutOfMemory("host store capacity exceeded");
  }
  in_use_ += bytes;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  entries_.emplace(key, Entry{bytes, std::move(payload)});
  return Status::OK();
}

Result<const Tensor*> HostStore::Peek(int64_t key) const {
  core::MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("host store has no key " + std::to_string(key));
  }
  return &it->second.payload;
}

Result<Tensor> HostStore::Take(int64_t key) {
  core::MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("host store has no key " + std::to_string(key));
  }
  in_use_ -= it->second.bytes;
  Tensor payload = std::move(it->second.payload);
  entries_.erase(it);
  return payload;
}

}  // namespace tsplit::mem
