#ifndef TSPLIT_CORE_LOGGING_H_
#define TSPLIT_CORE_LOGGING_H_

// Minimal CHECK / LOG facilities.
//
// CHECK* macros abort on violated invariants; they guard programming errors,
// not recoverable conditions (use Status for those).

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tsplit {
namespace internal {

class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line) {
    stream_ << file << ":" << line << " CHECK failed: ";
  }
  [[noreturn]] ~LogMessageFatal() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Voidify the ostream so CHECK can be used in expression position.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace tsplit

#define TSPLIT_CHECK(cond)                                               \
  (cond) ? (void)0                                                       \
         : ::tsplit::internal::LogVoidify() &                            \
               ::tsplit::internal::LogMessageFatal(__FILE__, __LINE__)   \
                   .stream()                                             \
               << #cond << " "

#define TSPLIT_CHECK_OP(a, b, op) TSPLIT_CHECK((a)op(b))                 \
    << "(" << (a) << " vs " << (b) << ") "

#define TSPLIT_CHECK_EQ(a, b) TSPLIT_CHECK_OP(a, b, ==)
#define TSPLIT_CHECK_NE(a, b) TSPLIT_CHECK_OP(a, b, !=)
#define TSPLIT_CHECK_LT(a, b) TSPLIT_CHECK_OP(a, b, <)
#define TSPLIT_CHECK_LE(a, b) TSPLIT_CHECK_OP(a, b, <=)
#define TSPLIT_CHECK_GT(a, b) TSPLIT_CHECK_OP(a, b, >)
#define TSPLIT_CHECK_GE(a, b) TSPLIT_CHECK_OP(a, b, >=)

#define TSPLIT_CHECK_OK(expr)                       \
  do {                                              \
    ::tsplit::Status _st = (expr);                  \
    TSPLIT_CHECK(_st.ok()) << _st.ToString();       \
  } while (0)

#ifdef NDEBUG
#define TSPLIT_DCHECK(cond) TSPLIT_CHECK(true)
#else
#define TSPLIT_DCHECK(cond) TSPLIT_CHECK(cond)
#endif

#endif  // TSPLIT_CORE_LOGGING_H_
