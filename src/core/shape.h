#ifndef TSPLIT_CORE_SHAPE_H_
#define TSPLIT_CORE_SHAPE_H_

// Tensor shape: an ordered list of extents. Conventions used by the model
// zoo: CNN feature maps are NCHW (axis 0 = sample/batch, axis 1 =
// channel/parameter); transformer activations are (batch, seq, hidden).

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/status.h"

namespace tsplit {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int axis) const { return dims_[static_cast<size_t>(axis)]; }
  void set_dim(int axis, int64_t value) {
    dims_[static_cast<size_t>(axis)] = value;
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all extents (1 for rank-0).
  int64_t num_elements() const;

  // True if every extent is >= 1.
  bool IsValid() const;

  // The shape of the `part_index`-th micro-tensor when splitting this shape
  // into `num_parts` along `axis`. Parts are as even as possible; the
  // remainder is distributed to the leading parts (so extents differ by at
  // most one). Errors if the axis is out of range or num_parts exceeds the
  // extent.
  Result<Shape> SplitPart(int axis, int num_parts, int part_index) const;

  // Offset (in elements along `axis`) at which part `part_index` begins.
  Result<int64_t> SplitOffset(int axis, int num_parts, int part_index) const;

  std::string ToString() const;  // e.g. "[64, 3, 224, 224]"

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace tsplit

#endif  // TSPLIT_CORE_SHAPE_H_
