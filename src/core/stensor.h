#ifndef TSPLIT_CORE_STENSOR_H_
#define TSPLIT_CORE_STENSOR_H_

// The sTensor configuration (paper §V-A, Fig 9): every tensor in a planned
// graph carries a memory option {reside, swap, recompute, fuse} plus an
// optional split setting (p_num micro-tensors along dimension dim). All
// micro-tensors of one sTensor share the same memory option ("consistent
// memory options", §IV-C), which keeps the joint search space tractable.
// `fuse` marks the interior tensor of a fused operator group: the value is
// ephemeral (produced and consumed inside one fused super-op) and never
// touches the memory pool, so it is excluded from the memory timeline.

#include <cstdint>
#include <string>

namespace tsplit {

enum class MemOpt : uint8_t {
  kReside = 0,   // keep in device memory for its whole lifetime
  kSwap,         // evict to host after last forward use; swap back for bwd
  kRecompute,    // free after last forward use; re-derive in backward
  kFuse,         // ephemeral interior of a fused op group; never pooled
};

const char* MemOptToString(MemOpt opt);

struct SplitConfig {
  int p_num = 1;  // number of micro-tensors (1 = unsplit)
  int dim = 0;    // axis to split along

  bool active() const { return p_num > 1; }
  bool operator==(const SplitConfig& o) const {
    return p_num == o.p_num && dim == o.dim;
  }
};

// Per-tensor plan entry. `opt` applies to each micro-tensor when split is
// active (the split op itself is rewritten to operate micro-tensor-wise).
struct STensorConfig {
  MemOpt opt = MemOpt::kReside;
  SplitConfig split;

  bool operator==(const STensorConfig& o) const {
    return opt == o.opt && split == o.split;
  }

  std::string ToString() const;  // e.g. "swap(p_num=4,dim=0)"
};

}  // namespace tsplit

#endif  // TSPLIT_CORE_STENSOR_H_
