#ifndef TSPLIT_CORE_DTYPE_H_
#define TSPLIT_CORE_DTYPE_H_

#include <cstddef>
#include <cstdint>

namespace tsplit {

// Element types supported by the runtime. The functional (CPU) executor
// computes in float32; other types exist for footprint accounting
// (e.g. int64 token ids, fp16 activations in what-if studies).
enum class DataType : uint8_t {
  kFloat32 = 0,
  kFloat16 = 1,
  kInt32 = 2,
  kInt64 = 3,
  kUInt8 = 4,
};

inline size_t SizeOf(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return 4;
    case DataType::kFloat16:
      return 2;
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kUInt8:
      return 1;
  }
  return 0;
}

inline const char* DataTypeToString(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return "f32";
    case DataType::kFloat16:
      return "f16";
    case DataType::kInt32:
      return "i32";
    case DataType::kInt64:
      return "i64";
    case DataType::kUInt8:
      return "u8";
  }
  return "?";
}

}  // namespace tsplit

#endif  // TSPLIT_CORE_DTYPE_H_
