#include "core/stensor.h"

namespace tsplit {

const char* MemOptToString(MemOpt opt) {
  switch (opt) {
    case MemOpt::kReside:
      return "reside";
    case MemOpt::kSwap:
      return "swap";
    case MemOpt::kRecompute:
      return "recompute";
    case MemOpt::kFuse:
      return "fuse";
  }
  return "?";
}

std::string STensorConfig::ToString() const {
  std::string out = MemOptToString(opt);
  if (split.active()) {
    out += "(p_num=" + std::to_string(split.p_num) +
           ",dim=" + std::to_string(split.dim) + ")";
  }
  return out;
}

}  // namespace tsplit
