#ifndef TSPLIT_CORE_TENSOR_H_
#define TSPLIT_CORE_TENSOR_H_

// Two tensor notions live here:
//
//  * TensorDesc — static graph metadata (shape, dtype, role, producer /
//    consumers). The planner and the timing simulator work on descriptors
//    only; no data is materialized.
//
//  * Tensor — a concrete host-resident buffer used by the functional (CPU)
//    executor and the reference kernels. Storage is always float32; integer
//    dtypes are representable for footprint accounting but are computed in
//    float by the reference kernels.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "core/ids.h"
#include "core/logging.h"
#include "core/shape.h"
#include "core/status.h"

namespace tsplit {

// Role of a tensor in a training iteration; drives baseline policies
// (e.g. vDNN only swaps activations) and footprint breakdowns.
enum class TensorKind : uint8_t {
  kInput = 0,       // training batch (images / token ids)
  kParameter,       // model weights
  kActivation,      // forward feature maps
  kGradient,        // backward gradient maps (w.r.t. activations)
  kParamGrad,       // gradients w.r.t. parameters
  kOptimizerState,  // momentum / Adam moments
  kWorkspace,       // scratch required by an op while executing
};

const char* TensorKindToString(TensorKind kind);

struct TensorDesc {
  TensorId id = kInvalidTensor;
  std::string name;
  Shape shape;
  DataType dtype = DataType::kFloat32;
  TensorKind kind = TensorKind::kActivation;
  OpId producer = kInvalidOp;         // op that writes this tensor
  std::vector<OpId> consumers;        // ops that read it

  size_t size_bytes() const {
    return static_cast<size_t>(shape.num_elements()) * SizeOf(dtype);
  }
};

// Dense host tensor with float32 storage.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), fill) {}

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  // 2-D / 4-D row-major indexing helpers for reference kernels.
  float& at2(int64_t i, int64_t j) {
    return data_[static_cast<size_t>(i * shape_.dim(1) + j)];
  }
  float at2(int64_t i, int64_t j) const {
    return data_[static_cast<size_t>(i * shape_.dim(1) + j)];
  }
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[Index4(n, c, h, w)];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[Index4(n, c, h, w)];
  }

  // Extracts the contiguous slice [offset, offset+extent) along `axis` into
  // a new tensor (used to materialize micro-tensors).
  Result<Tensor> Slice(int axis, int64_t offset, int64_t extent) const;

  // Slice without the allocation: copies [offset, offset+extent) along
  // `axis` into `dst`, which must already carry the slice shape. Fully
  // overwrites dst's elements (the compiled executor reuses one scratch
  // tensor across iterations through this).
  Status CopySliceInto(int axis, int64_t offset, int64_t extent,
                       Tensor* dst) const;

  // Writes `part` into this tensor at [offset, ...) along `axis` (used to
  // merge micro-tensors by concatenation).
  Status PasteSlice(int axis, int64_t offset, const Tensor& part);

  // Element-wise this += other (used to merge micro-tensors by reduction,
  // e.g. weight gradients of sample-split ops).
  Status AccumulateFrom(const Tensor& other);

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  size_t Index4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    TSPLIT_DCHECK(shape_.rank() == 4);
    return static_cast<size_t>(
        ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) + w);
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace tsplit

#endif  // TSPLIT_CORE_TENSOR_H_
