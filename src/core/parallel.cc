#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"

namespace tsplit::core {

namespace {

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  const char* env = std::getenv("TSPLIT_NUM_THREADS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, 256);
  }
  return HardwareThreads();
}

std::atomic<int> g_thread_override{0};

// One ParallelFor invocation. Workers pull chunk indices from a shared
// counter; the last finished chunk wakes the caller. Held by shared_ptr so
// a worker that dequeues its task after all chunks are claimed can still
// touch the counters safely.
struct Region {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  // `mu` only serializes the completion wakeup against the waiter (the
  // progress counters themselves are atomic and need no guard).
  Mutex mu;
  std::condition_variable done_cv;

  // Claims and runs one chunk; false when all chunks are claimed. `fn` is
  // only dereferenced for a successfully claimed chunk, which the caller
  // cannot outlive (it waits for done_chunks == num_chunks).
  bool RunOneChunk() {
    int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) return false;
    int64_t lo = begin + c * grain;
    (*fn)(lo, std::min(end, lo + grain));
    if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_chunks) {
      MutexLock lock(&mu);
      done_cv.notify_all();
    }
    return true;
  }

  void WaitAllDone() {
    MutexLock lock(&mu);
    while (done_chunks.load(std::memory_order_acquire) != num_chunks) {
      done_cv.wait(lock.native());
    }
  }
};

// True while this thread executes a chunk: nested ParallelFor degrades to
// serial instead of oversubscribing the pool.
thread_local bool t_in_parallel_region = false;

// Lazily started task-queue pool. Grows on demand (SetNumThreads may ask
// for more workers than the initial environment sizing); never shrinks —
// ParallelFor simply enqueues fewer helper tasks when the effective thread
// count is lower than the worker count.
class ThreadPool {
 public:
  ~ThreadPool() {
    // Swap the workers out under the lock, join outside it: a joining
    // worker parked in wake_cv_.wait must relock mu_ to observe shutdown_.
    std::vector<std::thread> workers;
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
      workers.swap(workers_);
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  static ThreadPool& Instance() {
    // Leaked on purpose: workers may outlive static destruction order.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  void EnsureWorkers(int count) TSPLIT_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void Submit(std::shared_ptr<Region> region) TSPLIT_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      tasks_.push_back(std::move(region));
    }
    wake_cv_.notify_one();
  }

 private:
  void WorkerLoop() TSPLIT_EXCLUDES(mu_) {
    t_in_parallel_region = true;  // nested ParallelFor in a chunk is serial
    for (;;) {
      std::shared_ptr<Region> region;
      {
        MutexLock lock(&mu_);
        while (!shutdown_ && tasks_.empty()) wake_cv_.wait(lock.native());
        if (shutdown_) return;
        region = std::move(tasks_.front());
        tasks_.pop_front();
      }
      while (region->RunOneChunk()) {
      }
    }
  }

  Mutex mu_;
  std::condition_variable wake_cv_;
  std::deque<std::shared_ptr<Region>> tasks_ TSPLIT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ TSPLIT_GUARDED_BY(mu_);
  bool shutdown_ TSPLIT_GUARDED_BY(mu_) = false;
};

}  // namespace

int NumThreads() {
  int override_threads = g_thread_override.load(std::memory_order_relaxed);
  if (override_threads >= 1) return std::min(override_threads, 256);
  static const int env_threads = EnvThreads();
  return env_threads;
}

void SetNumThreads(int n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

int64_t GrainFor(int64_t total_items, int64_t cost_per_item,
                 int64_t min_cost_per_chunk) {
  if (total_items <= 0) return 1;
  cost_per_item = std::max<int64_t>(cost_per_item, 1);
  return std::clamp<int64_t>(min_cost_per_chunk / cost_per_item, 1,
                             total_items);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  const int threads = NumThreads();

  if (threads == 1 || num_chunks == 1 || t_in_parallel_region) {
    // Serial path: identical chunk decomposition, caller runs every chunk.
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->begin = begin;
  region->end = end;
  region->grain = grain;
  region->num_chunks = num_chunks;

  const int helpers =
      static_cast<int>(std::min<int64_t>(threads, num_chunks)) - 1;
  ThreadPool& pool = ThreadPool::Instance();
  pool.EnsureWorkers(helpers);
  for (int i = 0; i < helpers; ++i) pool.Submit(region);

  t_in_parallel_region = true;
  while (region->RunOneChunk()) {
  }
  t_in_parallel_region = false;
  region->WaitAllDone();
}

}  // namespace tsplit::core
