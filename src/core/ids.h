#ifndef TSPLIT_CORE_IDS_H_
#define TSPLIT_CORE_IDS_H_

#include <cstdint>

namespace tsplit {

// Graph entity identifiers. Dense small integers indexing into the owning
// Graph's tables.
using TensorId = int32_t;
using OpId = int32_t;

inline constexpr TensorId kInvalidTensor = -1;
inline constexpr OpId kInvalidOp = -1;

}  // namespace tsplit

#endif  // TSPLIT_CORE_IDS_H_
