#include "core/shape.h"

#include <numeric>
#include <sstream>

namespace tsplit {

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

bool Shape::IsValid() const {
  for (int64_t d : dims_) {
    if (d < 1) return false;
  }
  return true;
}

Result<Shape> Shape::SplitPart(int axis, int num_parts,
                               int part_index) const {
  if (axis < 0 || axis >= rank()) {
    return Status::InvalidArgument("split axis " + std::to_string(axis) +
                                   " out of range for " + ToString());
  }
  if (num_parts < 1 || part_index < 0 || part_index >= num_parts) {
    return Status::InvalidArgument("bad split part " +
                                   std::to_string(part_index) + "/" +
                                   std::to_string(num_parts));
  }
  int64_t extent = dim(axis);
  if (num_parts > extent) {
    return Status::InvalidArgument(
        "cannot split extent " + std::to_string(extent) + " into " +
        std::to_string(num_parts) + " parts (axis " + std::to_string(axis) +
        " of " + ToString() + ")");
  }
  int64_t base = extent / num_parts;
  int64_t remainder = extent % num_parts;
  int64_t part_extent = base + (part_index < remainder ? 1 : 0);
  Shape part = *this;
  part.set_dim(axis, part_extent);
  return part;
}

Result<int64_t> Shape::SplitOffset(int axis, int num_parts,
                                   int part_index) const {
  if (axis < 0 || axis >= rank()) {
    return Status::InvalidArgument("split axis out of range");
  }
  if (num_parts < 1 || part_index < 0 || part_index >= num_parts) {
    return Status::InvalidArgument("bad split part index");
  }
  int64_t extent = dim(axis);
  int64_t base = extent / num_parts;
  int64_t remainder = extent % num_parts;
  // Leading `remainder` parts have extent base+1.
  int64_t offset = 0;
  if (part_index <= remainder) {
    offset = static_cast<int64_t>(part_index) * (base + 1);
  } else {
    offset = remainder * (base + 1) + (part_index - remainder) * base;
  }
  return offset;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace tsplit
