#ifndef TSPLIT_CORE_THREAD_ANNOTATIONS_H_
#define TSPLIT_CORE_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis support (-Wthread-safety): capability
// macros plus an annotated mutex wrapper. libstdc++'s std::mutex carries
// no capability attributes, so the concurrent classes in this codebase
// (core/parallel, runtime/copy_engine) and the externally synchronized
// ones (mem/memory_pool, mem/host_store) use core::Mutex / core::MutexLock
// instead; the analysis then statically proves every GUARDED_BY member is
// only touched under its lock. Under GCC (which has no such analysis) all
// macros expand to nothing and Mutex is a zero-overhead std::mutex shim.
//
// The root CMakeLists promotes -Wthread-safety to an error when the
// compiler is Clang, so an unguarded access is a build break, not a lint.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TSPLIT_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef TSPLIT_THREAD_ANNOTATION__
#define TSPLIT_THREAD_ANNOTATION__(x)
#endif

#define TSPLIT_CAPABILITY(x) TSPLIT_THREAD_ANNOTATION__(capability(x))
#define TSPLIT_SCOPED_CAPABILITY TSPLIT_THREAD_ANNOTATION__(scoped_lockable)
#define TSPLIT_GUARDED_BY(x) TSPLIT_THREAD_ANNOTATION__(guarded_by(x))
#define TSPLIT_PT_GUARDED_BY(x) TSPLIT_THREAD_ANNOTATION__(pt_guarded_by(x))
#define TSPLIT_ACQUIRE(...) \
  TSPLIT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define TSPLIT_RELEASE(...) \
  TSPLIT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define TSPLIT_REQUIRES(...) \
  TSPLIT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define TSPLIT_EXCLUDES(...) \
  TSPLIT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define TSPLIT_RETURN_CAPABILITY(x) \
  TSPLIT_THREAD_ANNOTATION__(lock_returned(x))
#define TSPLIT_NO_THREAD_SAFETY_ANALYSIS \
  TSPLIT_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace tsplit::core {

// std::mutex with a capability attribute so members can be GUARDED_BY it.
class TSPLIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TSPLIT_ACQUIRE() { mu_.lock(); }
  void Unlock() TSPLIT_RELEASE() { mu_.unlock(); }

  // The wrapped mutex, for std::condition_variable interop.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock over core::Mutex. Exposes the underlying std::unique_lock so
// condition-variable waits stay possible:
//
//   core::MutexLock lock(&mu_);
//   while (!ready_) cv_.wait(lock.native());   // ready_ GUARDED_BY(mu_)
//
// cv.wait unlocks/relocks internally; caller code only ever runs with the
// capability held, which is exactly what the analysis assumes.
class TSPLIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TSPLIT_ACQUIRE(mu) : lock_(mu->native()) {}
  ~MutexLock() TSPLIT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace tsplit::core

#endif  // TSPLIT_CORE_THREAD_ANNOTATIONS_H_
