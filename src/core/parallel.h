#ifndef TSPLIT_CORE_PARALLEL_H_
#define TSPLIT_CORE_PARALLEL_H_

// Shared thread pool + parallel_for primitive for the CPU reference
// kernels (the functional executor's compute substrate).
//
// Determinism contract: ParallelFor decomposes [begin, end) into chunks of
// `grain` indices. The chunk boundaries depend only on (begin, end, grain)
// — never on the thread count — and every chunk is executed exactly once.
// A kernel whose chunks write disjoint output ranges therefore produces
// bitwise-identical results for every thread count, including the serial
// path. Kernels that reduce across chunks must materialize one partial per
// chunk and combine the partials serially in chunk order (see
// LayerNormGradOp::Compute for the pattern).
//
// Sizing: the pool holds NumThreads() - 1 workers (the calling thread
// participates). NumThreads() defaults to std::thread::hardware_concurrency
// and is overridable via the TSPLIT_NUM_THREADS environment variable;
// TSPLIT_NUM_THREADS=1 runs every ParallelFor inline on the caller with no
// pool interaction at all (the determinism-debugging escape hatch).
// SetNumThreads overrides both at runtime (tests / benchmarks).

#include <cstdint>
#include <functional>

namespace tsplit::core {

// Effective worker count (>= 1): runtime override if set, else
// TSPLIT_NUM_THREADS, else hardware concurrency.
int NumThreads();

// Runtime override for the thread count; pass 0 to revert to the
// environment/hardware default. Thread-safe; takes effect on the next
// ParallelFor call.
void SetNumThreads(int n);

// Runs fn(chunk_begin, chunk_end) for every grain-sized chunk of
// [begin, end). Chunks run concurrently on the shared pool (the caller
// works too); nested calls from inside a chunk degrade to serial.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

// Grain that packs roughly `min_cost_per_chunk` units of work (item count
// x per-item cost) into each chunk. Depends only on its arguments — never
// on the thread count — so chunk decompositions stay deterministic.
int64_t GrainFor(int64_t total_items, int64_t cost_per_item,
                 int64_t min_cost_per_chunk = int64_t{1} << 14);

}  // namespace tsplit::core

#endif  // TSPLIT_CORE_PARALLEL_H_
