#include "core/tensor.h"

#include <algorithm>

namespace tsplit {

const char* TensorKindToString(TensorKind kind) {
  switch (kind) {
    case TensorKind::kInput:
      return "input";
    case TensorKind::kParameter:
      return "parameter";
    case TensorKind::kActivation:
      return "activation";
    case TensorKind::kGradient:
      return "gradient";
    case TensorKind::kParamGrad:
      return "param_grad";
    case TensorKind::kOptimizerState:
      return "optimizer_state";
    case TensorKind::kWorkspace:
      return "workspace";
  }
  return "?";
}

namespace {

// Decomposes a shape around `axis` into (outer, axis extent, inner) so a
// slice along `axis` is `outer` copies of contiguous runs of
// `extent * inner` elements.
void OuterInner(const Shape& shape, int axis, int64_t* outer,
                int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int a = 0; a < axis; ++a) *outer *= shape.dim(a);
  for (int a = axis + 1; a < shape.rank(); ++a) *inner *= shape.dim(a);
}

}  // namespace

Result<Tensor> Tensor::Slice(int axis, int64_t offset, int64_t extent) const {
  if (axis < 0 || axis >= shape_.rank()) {
    return Status::InvalidArgument("Slice: axis out of range");
  }
  if (offset < 0 || extent < 1 || offset + extent > shape_.dim(axis)) {
    return Status::InvalidArgument("Slice: range out of bounds");
  }
  Shape out_shape = shape_;
  out_shape.set_dim(axis, extent);
  Tensor out(out_shape);

  int64_t outer, inner;
  OuterInner(shape_, axis, &outer, &inner);
  int64_t src_axis = shape_.dim(axis);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = data() + (o * src_axis + offset) * inner;
    float* dst = out.data() + o * extent * inner;
    std::copy(src, src + extent * inner, dst);
  }
  return out;
}

Status Tensor::CopySliceInto(int axis, int64_t offset, int64_t extent,
                             Tensor* dst) const {
  if (axis < 0 || axis >= shape_.rank()) {
    return Status::InvalidArgument("CopySliceInto: axis out of range");
  }
  if (offset < 0 || extent < 1 || offset + extent > shape_.dim(axis)) {
    return Status::InvalidArgument("CopySliceInto: range out of bounds");
  }
  if (dst->shape().rank() != shape_.rank() ||
      dst->shape().dim(axis) != extent) {
    return Status::InvalidArgument("CopySliceInto: dst shape mismatch");
  }
  for (int a = 0; a < shape_.rank(); ++a) {
    if (a != axis && dst->shape().dim(a) != shape_.dim(a)) {
      return Status::InvalidArgument("CopySliceInto: dst shape mismatch");
    }
  }
  int64_t outer, inner;
  OuterInner(shape_, axis, &outer, &inner);
  int64_t src_axis = shape_.dim(axis);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = data() + (o * src_axis + offset) * inner;
    float* out = dst->data() + o * extent * inner;
    std::copy(src, src + extent * inner, out);
  }
  return Status::OK();
}

Status Tensor::PasteSlice(int axis, int64_t offset, const Tensor& part) {
  if (axis < 0 || axis >= shape_.rank()) {
    return Status::InvalidArgument("PasteSlice: axis out of range");
  }
  if (part.shape().rank() != shape_.rank()) {
    return Status::InvalidArgument("PasteSlice: rank mismatch");
  }
  for (int a = 0; a < shape_.rank(); ++a) {
    if (a == axis) continue;
    if (part.shape().dim(a) != shape_.dim(a)) {
      return Status::InvalidArgument("PasteSlice: shape mismatch on axis " +
                                     std::to_string(a));
    }
  }
  int64_t extent = part.shape().dim(axis);
  if (offset < 0 || offset + extent > shape_.dim(axis)) {
    return Status::InvalidArgument("PasteSlice: range out of bounds");
  }
  int64_t outer, inner;
  OuterInner(shape_, axis, &outer, &inner);
  int64_t dst_axis = shape_.dim(axis);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = part.data() + o * extent * inner;
    float* dst = data() + (o * dst_axis + offset) * inner;
    std::copy(src, src + extent * inner, dst);
  }
  return Status::OK();
}

Status Tensor::AccumulateFrom(const Tensor& other) {
  if (other.shape() != shape_) {
    return Status::InvalidArgument("AccumulateFrom: shape mismatch " +
                                   shape_.ToString() + " vs " +
                                   other.shape().ToString());
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return Status::OK();
}

}  // namespace tsplit
