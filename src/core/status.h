#ifndef TSPLIT_CORE_STATUS_H_
#define TSPLIT_CORE_STATUS_H_

// Status / Result<T> error handling for TSPLIT.
//
// TSPLIT is built without exceptions (RocksDB-style): every fallible
// operation returns a Status, or a Result<T> when it also produces a value.
// Use the RETURN_IF_ERROR / ASSIGN_OR_RETURN macros to propagate failures.

#include <optional>
#include <string>
#include <utility>

namespace tsplit {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

// A lightweight success-or-error value. Cheap to copy on the OK path
// (no allocation); error path carries a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error. Holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Accessing the value of a failed Result is a
  // programming error and aborts in debug builds.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace tsplit

// Propagates a non-OK Status from an expression.
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::tsplit::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

#define TSPLIT_CONCAT_IMPL(a, b) a##b
#define TSPLIT_CONCAT(a, b) TSPLIT_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, expr)                             \
  auto TSPLIT_CONCAT(_result_, __LINE__) = (expr);              \
  if (!TSPLIT_CONCAT(_result_, __LINE__).ok())                  \
    return TSPLIT_CONCAT(_result_, __LINE__).status();          \
  lhs = std::move(TSPLIT_CONCAT(_result_, __LINE__)).value()

#endif  // TSPLIT_CORE_STATUS_H_
