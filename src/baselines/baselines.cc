#include "baselines/baselines.h"

#include <cmath>

#include "planner/memory_sim.h"

namespace tsplit::baselines {

namespace {

using planner::ComputeTensorFacts;
using planner::Plan;
using planner::TensorFacts;

// True when evicting `t` can pay off: it is regenerated for a backward
// consumer after its forward life ends.
bool HasEvictionGap(const TensorFacts& f) {
  return !f.is_view_alias && !f.always_live && f.bytes > 0 &&
         f.first_bwd_use >= 0 && f.first_bwd_use > f.fwd_last_use;
}

bool ProducerIs(const Graph& graph, TensorId t, OpCategory category) {
  OpId producer = graph.tensor(t).producer;
  return producer != kInvalidOp &&
         graph.node(producer).op->category() == category &&
         !graph.node(producer).op->is_backward();
}

bool IsForwardActivation(const Graph& graph, const TensorFacts& f,
                         TensorId t) {
  OpId producer = graph.tensor(t).producer;
  if (producer == kInvalidOp) return false;
  const Op& op = *graph.node(producer).op;
  return !op.is_backward() && !op.is_view() &&
         graph.tensor(t).kind == TensorKind::kActivation && HasEvictionGap(f);
}

}  // namespace

// ------------------------------------------------------------------ Base

Result<Plan> BasePlanner::BuildPlan(const Graph& graph,
                                    const Schedule& schedule,
                                    const planner::GraphProfile& profile,
                                    size_t memory_budget) {
  (void)graph;
  (void)schedule;
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  return plan;
}

// ------------------------------------------------------------------ vDNN

Result<Plan> VdnnPlanner::BuildPlan(const Graph& graph,
                                    const Schedule& schedule,
                                    const planner::GraphProfile& profile,
                                    size_t memory_budget) {
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  std::vector<TensorFacts> facts = ComputeTensorFacts(graph, schedule);

  if (mode_ == Mode::kAll) {
    // Swap every forward feature map with a forward/backward gap.
    for (const TensorDesc& t : graph.tensors()) {
      const TensorFacts& f = facts[static_cast<size_t>(t.id)];
      if (IsForwardActivation(graph, f, t.id)) {
        plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
      }
    }
    return plan;
  }

  // vDNN-conv: swap the *inputs* of convolution layers (Rhu et al.).
  for (const OpNode& node : graph.nodes()) {
    if (node.op->category() != OpCategory::kConv || node.op->is_backward()) {
      continue;
    }
    for (TensorId input : node.inputs) {
      TensorId root = facts[static_cast<size_t>(input)].root;
      const TensorFacts& f = facts[static_cast<size_t>(root)];
      if (IsForwardActivation(graph, f, root)) {
        plan.Set(root, STensorConfig{MemOpt::kSwap, {}});
      }
    }
  }
  return plan;
}

// ----------------------------------------------------------- Checkpoints

Result<Plan> CheckpointsPlanner::BuildPlan(
    const Graph& graph, const Schedule& schedule,
    const planner::GraphProfile& profile, size_t memory_budget) {
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  std::vector<TensorFacts> facts = ComputeTensorFacts(graph, schedule);

  // Chen et al.: keep ~√N evenly spaced checkpoints, recompute the rest.
  std::vector<TensorId> candidates;
  for (const TensorDesc& t : graph.tensors()) {
    const TensorFacts& f = facts[static_cast<size_t>(t.id)];
    if (!IsForwardActivation(graph, f, t.id)) continue;
    OpId producer = graph.tensor(t.id).producer;
    if (!graph.node(producer).op->recompute_safe()) continue;
    candidates.push_back(t.id);
  }
  if (candidates.empty()) return plan;
  int segment = std::max(
      2, static_cast<int>(std::sqrt(static_cast<double>(candidates.size()))));
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool is_checkpoint = (i % static_cast<size_t>(segment)) == 0;
    if (!is_checkpoint) {
      plan.Set(candidates[i], STensorConfig{MemOpt::kRecompute, {}});
    }
  }
  return plan;
}

// ---------------------------------------------------------- SuperNeurons

Result<Plan> SuperNeuronsPlanner::BuildPlan(
    const Graph& graph, const Schedule& schedule,
    const planner::GraphProfile& profile, size_t memory_budget) {
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  std::vector<TensorFacts> facts = ComputeTensorFacts(graph, schedule);

  // Layer-type policy (Wang et al.): conv outputs swap (expensive to
  // recompute, large); cheap layers recompute. Everything keys off convs —
  // a model without them is left untouched.
  bool has_conv = false;
  for (const OpNode& node : graph.nodes()) {
    if (node.op->category() == OpCategory::kConv && !node.op->is_backward()) {
      has_conv = true;
      break;
    }
  }
  if (!has_conv) return plan;

  for (const TensorDesc& t : graph.tensors()) {
    const TensorFacts& f = facts[static_cast<size_t>(t.id)];
    if (f.is_view_alias || f.always_live || f.bytes == 0) continue;
    if (t.kind != TensorKind::kActivation) continue;
    OpId producer = graph.tensor(t.id).producer;
    if (producer == kInvalidOp || graph.node(producer).op->is_backward() ||
        graph.node(producer).op->is_view()) {
      continue;
    }
    // Conv outputs are swapped whether or not backward reads them directly:
    // they are the checkpoints the cheap-layer recomputation restarts from.
    if (ProducerIs(graph, t.id, OpCategory::kConv)) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
      continue;
    }
    if (!HasEvictionGap(f)) continue;
    const Op& op = *graph.node(producer).op;
    switch (op.category()) {
      case OpCategory::kPool:
      case OpCategory::kActivation:
      case OpCategory::kBatchNorm:
      case OpCategory::kElementwise:
      case OpCategory::kSoftmax:
      case OpCategory::kDropout:
        if (op.recompute_safe()) {
          plan.Set(t.id, STensorConfig{MemOpt::kRecompute, {}});
        }
        break;
      default:
        break;  // matmul / embedding feature maps stay resident
    }
  }
  return plan;
}

// ---------------------------------------------------------- ZeRO-Offload

Result<Plan> ZeroOffloadPlanner::BuildPlan(
    const Graph& graph, const Schedule& schedule,
    const planner::GraphProfile& profile, size_t memory_budget) {
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  std::vector<TensorFacts> facts = ComputeTensorFacts(graph, schedule);

  // Gradients of parameters stream to the CPU as produced; optimizer state
  // lives on the CPU. Activations — the bulk of CNN footprints — stay.
  for (const TensorDesc& t : graph.tensors()) {
    const TensorFacts& f = facts[static_cast<size_t>(t.id)];
    if (f.is_view_alias) continue;
    if (t.kind == TensorKind::kParamGrad) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
    }
    if (t.kind == TensorKind::kOptimizerState) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
    }
  }
  return plan;
}

// ----------------------------------------------------- FairScale-Offload

Result<Plan> FairscaleOffloadPlanner::BuildPlan(
    const Graph& graph, const Schedule& schedule,
    const planner::GraphProfile& profile, size_t memory_budget) {
  (void)profile;
  (void)memory_budget;
  Plan plan;
  plan.planner_name = name();
  std::vector<TensorFacts> facts = ComputeTensorFacts(graph, schedule);

  // Parameter shards move CPU<->GPU around their uses, and intermediate
  // activations are copied through the CPU (paper §VI-A's description).
  for (const TensorDesc& t : graph.tensors()) {
    const TensorFacts& f = facts[static_cast<size_t>(t.id)];
    if (f.is_view_alias) continue;
    if (t.kind == TensorKind::kParameter &&
        f.first_bwd_use > f.fwd_last_use && f.first_bwd_use >= 0) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
      continue;
    }
    if (IsForwardActivation(graph, f, t.id)) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
    }
  }
  return plan;
}

}  // namespace tsplit::baselines
