#ifndef TSPLIT_BASELINES_BASELINES_H_
#define TSPLIT_BASELINES_BASELINES_H_

// The paper's comparison systems (§VI-A), re-expressed as planners over
// our runtime:
//   Base               — keep every tensor resident (TensorFlow/PyTorch).
//   vDNN-conv          — swap the inputs of convolution layers.
//   vDNN-all           — swap all forward feature maps.
//   Checkpoints        — recompute activations between √N checkpoints
//                        (Chen et al.).
//   SuperNeurons       — swap conv outputs, recompute cheap layers (pool /
//                        activation / BN / elementwise). Conv-centric: on
//                        conv-free models (Transformer) it has nothing to
//                        act on, matching the paper's "x" entries.
//   ZeRO-Offload       — offload parameter gradients + optimizer state to
//                        the CPU; activations untouched.
//   FairScale-Offload  — shard/offload parameters each iteration and copy
//                        intermediate activations through the CPU.

#include "planner/planner.h"

namespace tsplit::baselines {

class BasePlanner : public planner::Planner {
 public:
  std::string name() const override { return "Base"; }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;
};

class VdnnPlanner : public planner::Planner {
 public:
  enum class Mode { kConv, kAll };
  explicit VdnnPlanner(Mode mode) : mode_(mode) {}
  std::string name() const override {
    return mode_ == Mode::kConv ? "vDNN-conv" : "vDNN-all";
  }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;

 private:
  Mode mode_;
};

class CheckpointsPlanner : public planner::Planner {
 public:
  std::string name() const override { return "Checkpoints"; }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;
};

class SuperNeuronsPlanner : public planner::Planner {
 public:
  std::string name() const override { return "SuperNeurons"; }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;
};

class ZeroOffloadPlanner : public planner::Planner {
 public:
  std::string name() const override { return "ZeRO-Offload"; }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;
};

class FairscaleOffloadPlanner : public planner::Planner {
 public:
  std::string name() const override { return "FairScale-Offload"; }
  Result<planner::Plan> BuildPlan(const Graph& graph,
                                  const Schedule& schedule,
                                  const planner::GraphProfile& profile,
                                  size_t memory_budget) override;
};

}  // namespace tsplit::baselines

#endif  // TSPLIT_BASELINES_BASELINES_H_
