#ifndef TSPLIT_REWRITE_PROGRAM_H_
#define TSPLIT_REWRITE_PROGRAM_H_

// Augmented-program generation (paper §V-A, Fig 10): rewrites a scheduled
// tensor graph plus a memory plan into an executable step sequence with
// explicit micro-tensor computes, split/merge copies, swap-out/swap-in
// transfers, recompute subgraphs, and eviction points. Program order plus
// per-stream FIFO semantics encode the control (timing) edges of the
// paper's augmented dataflow graph.
//
// Both executors interpret this one program: the timing simulator replays
// it against the discrete-event GPU, and the functional executor replays it
// with real host tensors to prove a plan is semantically lossless.
//
// Micro-execution model. A tensor with split config (p, d) is stored as p
// micro-buffers. An op runs micro-wise when a SplitRule aligns one of its
// split inputs (or its split output) with an output axis; the generator
// then emits p micro-computes and applies memory options per part:
//   * input micro-tensors whose last forward use is this op are evicted
//     (swap-out / drop) immediately after their part — the paper's
//     "evict an input micro-tensor to make room" (§III-A);
//   * produced micro-tensors of a swap-tensor whose forward life ends at
//     production are transferred out as soon as each part completes — the
//     paper's early swapping at micro-tensor granularity.
// Backward, micro parts are regenerated one part ahead of use, overlapping
// H2D transfer with the preceding part's compute.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/status.h"
#include "graph/graph.h"
#include "graph/schedule.h"
#include "planner/plan.h"
#include "planner/profile.h"

namespace tsplit::rewrite {

// Identifies a device buffer: a whole tensor (micro == -1) or one
// micro-tensor of a split sTensor.
struct BufferKey {
  TensorId tensor = kInvalidTensor;
  int micro = -1;

  bool operator==(const BufferKey& o) const {
    return tensor == o.tensor && micro == o.micro;
  }
};

struct BufferKeyHash {
  size_t operator()(const BufferKey& k) const {
    return static_cast<size_t>(k.tensor) * 1315423911u ^
           static_cast<size_t>(k.micro + 7);
  }
};

enum class StepKind : uint8_t {
  kAlloc = 0,   // reserve device memory for `buffer`
  kFree,        // release a dead buffer
  kCompute,     // run (micro-)op on the compute stream
  kSwapOut,     // D2H transfer; device side released at completion
  kSwapIn,      // allocate + H2D transfer from the host store
  kDrop,        // release without host copy (recompute eviction)
  kSplitCopy,   // scatter a whole buffer into its micro buffers
  kMergeCopy,   // gather micro buffers into a whole buffer
  kFusedOp,     // run a fused op chain; interiors stay in scratch registers
};

const char* StepKindToString(StepKind kind);

struct Step {
  StepKind kind = StepKind::kCompute;

  // kCompute fields.
  OpId op = kInvalidOp;
  int micro = -1;           // part index (-1 = whole op)
  int p_num = 1;            // split count when micro >= 0
  int split_axis = 0;       // output split axis when micro >= 0
  // Device buffers backing each op input: inputs[i] holds the key(s) for
  // op input i — one whole buffer, one micro part, or a full micro set.
  std::vector<std::vector<BufferKey>> inputs;
  std::vector<BufferKey> outputs;
  double seconds = 0;       // profiled duration
  size_t workspace_bytes = 0;
  bool is_recompute = false;

  // Memory-step fields (kAlloc/kFree/kSwapOut/kSwapIn/kDrop/copies).
  BufferKey buffer;
  size_t bytes = 0;
  double transfer_seconds = 0;  // kSwapOut / kSwapIn

  // kFusedOp fields. The super-op runs `fused_ops` in order as one step:
  // `inputs` holds one group per member input, member-major (member 0's
  // inputs first), `outputs` one entry per member in member order.
  // `ephemeral` lists the interior tensors — produced and consumed inside
  // the step, held in executor scratch, never pool-allocated; their
  // BufferKeys still appear in inputs/outputs so members wire up, but no
  // kAlloc/kFree/swap step may ever reference them. `seconds` sums the
  // members' profiled times; `workspace_bytes` is the member maximum (the
  // members run back-to-back, so only the largest workspace is ever held).
  std::vector<OpId> fused_ops;
  std::vector<TensorId> ephemeral;

  int sched_pos = -1;  // originating schedule position (diagnostics)
};

struct Program {
  std::vector<Step> steps;
  // Size of every buffer the program references.
  std::unordered_map<BufferKey, size_t, BufferKeyHash> buffer_bytes;
  // Effective (validated) split config per split tensor; executors use the
  // axis to slice / merge micro buffers.
  std::unordered_map<TensorId, SplitConfig> split_configs;

  // Aggregates (filled by the generator).
  size_t swap_out_bytes = 0;
  size_t swap_in_bytes = 0;
  double recompute_seconds = 0;
  int num_micro_computes = 0;

  std::string DebugString(const Graph& graph) const;

  // Order-sensitive structural hash over the step stream plus
  // (order-independent) split configs and buffer sizes. The compiled
  // executor keys its lowering cache on this, so a program mutated in
  // place between Run calls triggers recompilation. O(steps).
  uint64_t Fingerprint() const;
};

// How recomputation subgraphs manage their intermediate tensors (§V-D).
enum class RecomputeMode : uint8_t {
  kMemoryCentric = 0,  // re-drop intermediates after each use: O(N²) compute,
                       // O(1) extra memory (the TSPLIT default)
  kSpeedCentric,       // keep intermediates resident: O(N) compute,
                       // O(N) extra memory
  kLru,                // keep intermediates while under a byte budget
};

struct ProgramOptions {
  RecomputeMode recompute_mode = RecomputeMode::kMemoryCentric;
  size_t lru_budget_bytes = size_t{1} << 30;
  // How many schedule positions before a consumer a swap-in is issued
  // (the paper's ideal swap-in begin time: the previous op's start).
  int swap_in_lookahead = 1;
};

// Rewrites (graph, schedule, plan) into an executable program.
Result<Program> GenerateProgram(const Graph& graph, const Schedule& schedule,
                                const planner::Plan& plan,
                                const planner::GraphProfile& profile,
                                const ProgramOptions& options = {});

}  // namespace tsplit::rewrite

#endif  // TSPLIT_REWRITE_PROGRAM_H_
