#ifndef TSPLIT_REWRITE_EXPORT_H_
#define TSPLIT_REWRITE_EXPORT_H_

// Exporters for the planned / augmented dataflow graph.
//
// 1. Graphviz DOT of the tensor DFG annotated with each sTensor's planned
//    config (Fig 10's augmented-graph view, at tensor granularity).
// 2. A PyTorch conversion stub (paper §VI-D): TSPLIT's augmented dataflow
//    graph "can be converted into the executable model in PyTorch or
//    TensorFlow" — this emits a Python module skeleton whose forward pass
//    registers the plan's swap (saved_tensors_hooks pack/unpack to CPU)
//    and recompute (torch.utils.checkpoint) decisions per tensor, so the
//    plan is portable to a real framework.

#include <string>

#include "graph/graph.h"
#include "planner/plan.h"

namespace tsplit::rewrite {

// DOT digraph: ops are boxes, tensors are edges labelled with shape and
// planned config; managed tensors are coloured (swap = blue, recompute =
// orange, split = doubled edges).
std::string ExportGraphviz(const Graph& graph, const planner::Plan& plan,
                           bool include_backward = false);

// Python source implementing the plan's memory hooks for PyTorch.
std::string ExportPyTorchStub(const Graph& graph,
                              const planner::Plan& plan,
                              const std::string& model_name);

}  // namespace tsplit::rewrite

#endif  // TSPLIT_REWRITE_EXPORT_H_
