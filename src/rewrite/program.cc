#include "rewrite/program.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "core/logging.h"
#include "sim/kernel_model.h"

namespace tsplit::rewrite {

const char* StepKindToString(StepKind kind) {
  switch (kind) {
    case StepKind::kAlloc:
      return "alloc";
    case StepKind::kFree:
      return "free";
    case StepKind::kCompute:
      return "compute";
    case StepKind::kSwapOut:
      return "swap_out";
    case StepKind::kSwapIn:
      return "swap_in";
    case StepKind::kDrop:
      return "drop";
    case StepKind::kSplitCopy:
      return "split_copy";
    case StepKind::kMergeCopy:
      return "merge_copy";
    case StepKind::kFusedOp:
      return "fused";
  }
  return "?";
}

uint64_t Program::Fingerprint() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  auto mix_key = [&mix](const BufferKey& key) {
    mix(static_cast<uint64_t>(key.tensor) + 1);
    mix(static_cast<uint64_t>(key.micro) + 2);
  };
  mix(steps.size());
  for (const Step& step : steps) {
    mix(static_cast<uint64_t>(step.kind));
    mix(static_cast<uint64_t>(step.op) + 1);
    mix(static_cast<uint64_t>(step.micro) + 2);
    mix(static_cast<uint64_t>(step.p_num));
    mix(static_cast<uint64_t>(step.split_axis) + 2);
    mix(step.workspace_bytes);
    mix(static_cast<uint64_t>(step.is_recompute));
    mix_key(step.buffer);
    mix(step.bytes);
    mix(step.inputs.size());
    for (const auto& group : step.inputs) {
      mix(group.size());
      for (const BufferKey& key : group) mix_key(key);
    }
    mix(step.outputs.size());
    for (const BufferKey& key : step.outputs) mix_key(key);
    mix(step.fused_ops.size());
    for (OpId op : step.fused_ops) mix(static_cast<uint64_t>(op) + 1);
    mix(step.ephemeral.size());
    for (TensorId t : step.ephemeral) mix(static_cast<uint64_t>(t) + 1);
  }
  // Unordered maps fold in order-independently (XOR of per-entry hashes)
  // so the fingerprint does not depend on hash-table iteration order.
  uint64_t buffers = 0;
  for (const auto& [key, bytes] : buffer_bytes) {
    uint64_t e = static_cast<uint64_t>(key.tensor) * 0x100000001b3ull;
    e ^= (static_cast<uint64_t>(key.micro) + 2) * 0x9e3779b97f4a7c15ull;
    e ^= bytes * 0xc2b2ae3d27d4eb4full;
    buffers ^= e;
  }
  mix(buffers);
  uint64_t splits = 0;
  for (const auto& [tensor, config] : split_configs) {
    uint64_t e = static_cast<uint64_t>(tensor) * 0x100000001b3ull;
    e ^= static_cast<uint64_t>(config.p_num) * 0x9e3779b97f4a7c15ull;
    e ^= (static_cast<uint64_t>(config.dim) + 1) * 0xc2b2ae3d27d4eb4full;
    splits ^= e;
  }
  mix(splits);
  return h;
}

std::string Program::DebugString(const Graph& graph) const {
  std::ostringstream os;
  os << "Program{" << steps.size() << " steps, swap_out=" << swap_out_bytes
     << "B, swap_in=" << swap_in_bytes
     << "B, recompute=" << recompute_seconds << "s}\n";
  for (const Step& step : steps) {
    os << "  " << StepKindToString(step.kind);
    if (step.kind == StepKind::kCompute) {
      os << " " << graph.node(step.op).name;
      if (step.micro >= 0) os << "[" << step.micro << "/" << step.p_num << "]";
      if (step.is_recompute) os << " (recompute)";
    } else if (step.kind == StepKind::kFusedOp) {
      os << " {";
      for (size_t i = 0; i < step.fused_ops.size(); ++i) {
        if (i > 0) os << " ";
        os << graph.node(step.fused_ops[i]).name;
      }
      os << "}";
    } else {
      os << " t" << step.buffer.tensor;
      if (step.buffer.micro >= 0) os << "." << step.buffer.micro;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

enum class BufState : uint8_t { kNone = 0, kResident, kHost, kDropped, kFreed };

class Generator {
 public:
  Generator(const Graph& graph, const Schedule& schedule,
            const planner::Plan& plan, const planner::GraphProfile& profile,
            const ProgramOptions& options)
      : graph_(graph),
        schedule_(schedule),
        plan_(plan),
        profile_(profile),
        options_(options) {}

  Result<Program> Run();

 private:
  struct RootInfo {
    std::vector<int> use_positions;  // sorted, includes virtual regen uses
    int def_pos = -1;
    int fwd_last_use = -1;
    int last_real_use = -1;  // last position a scheduled op reads it
    bool always_live = false;
  };

  struct MicroExec {
    int p_num;
    int output_axis;
    SplitRule rule;
  };

  // ---- Precomputation ----
  void Precompute();
  TensorId RootOf(TensorId id) const { return root_of_[static_cast<size_t>(id)]; }

  // Effective split config of a root (inactive configs normalized away).
  SplitConfig SplitOf(TensorId root) const;
  MemOpt OptOf(TensorId root) const { return plan_.ConfigFor(root).opt; }

  size_t KeyBytes(const BufferKey& key) const;
  std::vector<BufferKey> KeysOf(TensorId root) const;

  bool HasUseAfter(TensorId root, int pos) const;

  // ---- State / emission ----
  BufState StateOf(const BufferKey& key) const {
    auto it = state_.find(key);
    return it == state_.end() ? BufState::kNone : it->second;
  }
  void SetState(const BufferKey& key, BufState s) { state_[key] = s; }

  Step& Emit(StepKind kind, BufferKey key, int pos);
  void EmitAlloc(const BufferKey& key, int pos);
  void EmitFree(const BufferKey& key, int pos);
  void EmitSwapOut(const BufferKey& key, int pos);
  void EmitSwapIn(const BufferKey& key, int pos);
  void EmitDrop(const BufferKey& key, int pos);

  // Makes `key` resident, swapping in or recomputing as needed. Recompute-
  // materialized ancestor keys are recorded in `materialized_` for the
  // post-compute cleanup.
  Status EnsureResident(const BufferKey& key, int pos, int depth = 0);

  // Re-executes the producer of `key` (recompute path).
  Status Recompute(const BufferKey& key, int pos, int depth);

  // Emits the full execution of op `op_id` (used by the main pass and by
  // recompute). When `is_recompute`, evictions of freshly produced outputs
  // are skipped (cleanup handles them).
  Status EmitOpExecution(OpId op_id, int pos, bool is_recompute, int depth);

  // Emits a single micro-part of `op_id` (single-part recompute path).
  Status EmitMicroPartExecution(OpId op_id, const SplitRule& rule, int p_num,
                                int part, int pos, int depth);

  // Memory-centric chain hygiene: right after a recompute step, ancestors
  // materialized solely for it leave the device again (re-drop recompute
  // tensors, park checkpoint tensors back on the host) so a deep chain
  // holds O(1) extra memory (§V-D).
  void ReleaseChainInputs(const OpNode& node, int pos);

  // Emits one kFusedOp step running the whole group single-pass: external
  // inputs are made resident, boundary outputs allocated, and interiors
  // left entirely to executor scratch (no Alloc/Free ever touches them).
  Status EmitFusedGroupExecution(const planner::FusionGroup& group, int pos);

  // Post-execution cleanup shared by the plain and fused paths: re-evicts
  // recompute swap-ins and applies the recompute-mode policy to ancestors
  // materialized for the op just emitted.
  void PostExecCleanup(int pos);

  // Applies the end-of-life policy to a key after its use at `pos`.
  void ApplyEndOfLife(const BufferKey& key, int pos);

  // Decides whether the op can run micro-wise and along which axis.
  std::optional<MicroExec> DecideMicroExec(OpId op_id) const;

  double MicroSeconds(OpId op_id, const SplitRule& rule, int p_num,
                      int part) const;
  size_t MicroWorkspace(OpId op_id, const SplitRule& rule, int p_num,
                        int part) const;

  // ---- Members ----
  const Graph& graph_;
  const Schedule& schedule_;
  const planner::Plan& plan_;
  const planner::GraphProfile& profile_;
  const ProgramOptions& options_;

  Program program_;
  std::vector<TensorId> root_of_;
  // Per-op index into plan_.fusion_groups (-1: not a fused member).
  std::vector<int> fused_group_of_;
  std::vector<RootInfo> roots_;  // indexed by tensor id; valid for roots only
  std::unordered_map<BufferKey, BufState, BufferKeyHash> state_;
  // Keys materialized by recompute while preparing the current op's inputs.
  std::vector<BufferKey> materialized_;
  // Keys swapped in purely to feed a recompute subgraph; re-evicted after.
  std::vector<BufferKey> recompute_swapins_;
  // Ref-counted pins: every in-flight EmitOpExecution level pins its input
  // and output roots so nested recompute chains cannot evict buffers a
  // parent level has already prepared.
  std::unordered_map<TensorId, int> pinned_;

  class PinScope {
   public:
    PinScope(Generator* generator, const OpNode& node)
        : generator_(generator) {
      for (TensorId input : node.inputs) {
        roots_.push_back(generator_->RootOf(input));
      }
      for (TensorId output : node.outputs) {
        roots_.push_back(generator_->RootOf(output));
      }
      for (TensorId root : roots_) ++generator_->pinned_[root];
    }
    // Pins an explicit root set (fused groups pin every member's i/o).
    PinScope(Generator* generator, std::vector<TensorId> roots)
        : generator_(generator), roots_(std::move(roots)) {
      for (TensorId root : roots_) ++generator_->pinned_[root];
    }
    ~PinScope() {
      for (TensorId root : roots_) {
        auto it = generator_->pinned_.find(root);
        if (--it->second == 0) generator_->pinned_.erase(it);
      }
    }
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    Generator* generator_;
    std::vector<TensorId> roots_;
  };
  size_t lru_kept_bytes_ = 0;
};

void Generator::Precompute() {
  fused_group_of_.assign(graph_.nodes().size(), -1);
  for (size_t g = 0; g < plan_.fusion_groups.size(); ++g) {
    for (OpId op : plan_.fusion_groups[g].ops) {
      fused_group_of_[static_cast<size_t>(op)] = static_cast<int>(g);
    }
  }

  const auto num_tensors = static_cast<size_t>(graph_.num_tensors());
  root_of_.resize(num_tensors);
  for (size_t i = 0; i < num_tensors; ++i) {
    TensorId id = static_cast<TensorId>(i);
    OpId producer = graph_.tensor(id).producer;
    if (producer != kInvalidOp && graph_.node(producer).op->is_view()) {
      // Views are single-input; producers are processed in id order, so the
      // input's root is already final.
      root_of_[i] = root_of_[static_cast<size_t>(
          graph_.node(producer).inputs[0])];
    } else {
      root_of_[i] = id;
    }
  }

  roots_.assign(num_tensors, RootInfo{});
  for (const OpNode& node : graph_.nodes()) {
    if (node.op->is_view()) continue;
    int pos = schedule_.pos_of_op[static_cast<size_t>(node.id)];
    for (TensorId input : node.inputs) {
      TensorId root = RootOf(input);
      RootInfo& info = roots_[static_cast<size_t>(root)];
      info.use_positions.push_back(pos);
      if (!node.op->is_backward()) {
        info.fwd_last_use = std::max(info.fwd_last_use, pos);
      }
    }
    for (TensorId output : node.outputs) {
      roots_[static_cast<size_t>(output)].def_pos = pos;
    }
  }
  for (size_t i = 0; i < num_tensors; ++i) {
    RootInfo& info = roots_[i];
    std::sort(info.use_positions.begin(), info.use_positions.end());
    if (info.fwd_last_use < 0) info.fwd_last_use = info.def_pos;
    info.last_real_use =
        info.use_positions.empty() ? -1 : info.use_positions.back();
    TensorKind kind = graph_.tensor(static_cast<TensorId>(i)).kind;
    info.always_live = kind == TensorKind::kParameter ||
                       kind == TensorKind::kInput ||
                       kind == TensorKind::kOptimizerState;
  }

  // Recompute demand: regenerating a recompute-marked tensor re-executes
  // its producer, which needs the producer's inputs available *then*.
  // Propagate those regeneration positions onto ancestor roots as virtual
  // uses, so end-of-life keeps (reside), offloads (swap), or re-derives
  // (recompute) them instead of freeing data a later recompute needs.
  // Descending id order: a tensor's ancestors have smaller ids, so chains
  // cascade in one pass.
  for (int64_t i = static_cast<int64_t>(num_tensors) - 1; i >= 0; --i) {
    TensorId id = static_cast<TensorId>(i);
    if (RootOf(id) != id) continue;
    if (OptOf(id) != MemOpt::kRecompute) continue;
    const RootInfo& info = roots_[static_cast<size_t>(id)];
    OpId producer = graph_.tensor(id).producer;
    if (producer == kInvalidOp) continue;
    std::vector<int> regen;
    for (int p : info.use_positions) {
      if (p > info.fwd_last_use) regen.push_back(p);
    }
    if (regen.empty()) continue;
    for (TensorId input : graph_.node(producer).inputs) {
      RootInfo& ancestor = roots_[static_cast<size_t>(RootOf(input))];
      if (ancestor.always_live) continue;
      ancestor.use_positions.insert(ancestor.use_positions.end(),
                                    regen.begin(), regen.end());
      std::sort(ancestor.use_positions.begin(),
                ancestor.use_positions.end());
    }
  }
}

SplitConfig Generator::SplitOf(TensorId root) const {
  SplitConfig split = plan_.ConfigFor(root).split;
  if (!split.active()) return SplitConfig{};
  const Shape& shape = graph_.tensor(root).shape;
  if (split.dim < 0 || split.dim >= shape.rank() ||
      shape.dim(split.dim) < split.p_num) {
    return SplitConfig{};  // illegal split requests degrade to unsplit
  }
  return split;
}

size_t Generator::KeyBytes(const BufferKey& key) const {
  const TensorDesc& desc = graph_.tensor(key.tensor);
  if (key.micro < 0) return desc.size_bytes();
  SplitConfig split = SplitOf(key.tensor);
  auto part = desc.shape.SplitPart(split.dim, split.p_num, key.micro);
  TSPLIT_CHECK(part.ok());
  return static_cast<size_t>(part->num_elements()) * SizeOf(desc.dtype);
}

std::vector<BufferKey> Generator::KeysOf(TensorId root) const {
  SplitConfig split = SplitOf(root);
  if (!split.active()) return {BufferKey{root, -1}};
  std::vector<BufferKey> keys;
  keys.reserve(static_cast<size_t>(split.p_num));
  for (int j = 0; j < split.p_num; ++j) keys.push_back(BufferKey{root, j});
  return keys;
}

bool Generator::HasUseAfter(TensorId root, int pos) const {
  const RootInfo& info = roots_[static_cast<size_t>(root)];
  return !info.use_positions.empty() && info.use_positions.back() > pos;
}

Step& Generator::Emit(StepKind kind, BufferKey key, int pos) {
  Step step;
  step.kind = kind;
  step.buffer = key;
  step.bytes = KeyBytes(key);
  step.sched_pos = pos;
  program_.steps.push_back(std::move(step));
  program_.buffer_bytes[key] = program_.steps.back().bytes;
  return program_.steps.back();
}

void Generator::EmitAlloc(const BufferKey& key, int pos) {
  Emit(StepKind::kAlloc, key, pos);
  SetState(key, BufState::kResident);
}

void Generator::EmitFree(const BufferKey& key, int pos) {
  Emit(StepKind::kFree, key, pos);
  SetState(key, BufState::kFreed);
}

void Generator::EmitSwapOut(const BufferKey& key, int pos) {
  Step& step = Emit(StepKind::kSwapOut, key, pos);
  step.transfer_seconds =
      static_cast<double>(step.bytes) / profile_.device.pcie_bytes_per_sec();
  program_.swap_out_bytes += step.bytes;
  SetState(key, BufState::kHost);
}

void Generator::EmitSwapIn(const BufferKey& key, int pos) {
  Step& step = Emit(StepKind::kSwapIn, key, pos);
  step.transfer_seconds =
      static_cast<double>(step.bytes) / profile_.device.pcie_bytes_per_sec();
  program_.swap_in_bytes += step.bytes;
  SetState(key, BufState::kResident);
}

void Generator::EmitDrop(const BufferKey& key, int pos) {
  Emit(StepKind::kDrop, key, pos);
  SetState(key, BufState::kDropped);
}

std::optional<Generator::MicroExec> Generator::DecideMicroExec(
    OpId op_id) const {
  const OpNode& node = graph_.node(op_id);
  if (node.op->is_view() || node.outputs.size() != 1) return std::nullopt;
  std::vector<Shape> in = graph_.InputShapes(op_id);
  std::vector<Shape> out = graph_.OutputShapes(op_id);

  // Preference 1: the output's own split config.
  TensorId out_root = RootOf(node.outputs[0]);
  SplitConfig out_split = SplitOf(out_root);
  if (out_split.active()) {
    auto rule = node.op->SplitRuleFor(out_split.dim, in, out);
    if (rule.ok() && out[0].dim(out_split.dim) >= out_split.p_num) {
      return MicroExec{out_split.p_num, out_split.dim, *rule};
    }
  }
  // Preference 2: a split input aligned through some rule. Rule axes are
  // expressed in the op's declared input shapes, so the input must be the
  // storage root itself (a view would change the coordinate system).
  for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
    TensorId in_root = RootOf(node.inputs[idx]);
    if (in_root != node.inputs[idx]) continue;
    SplitConfig in_split = SplitOf(in_root);
    if (!in_split.active()) continue;
    for (const SplitRule& rule : node.op->split_rules(in, out)) {
      if (rule.input_axes[idx] != in_split.dim) continue;
      if (rule.merge == MergeKind::kSum) {
        // Reduction split: micro-ops emit full-shaped partials that
        // accumulate (weight gradients over sample-split activations).
        return MicroExec{in_split.p_num, kReduceOutput, rule};
      }
      if (out[0].dim(rule.output_axis) >= in_split.p_num) {
        return MicroExec{in_split.p_num, rule.output_axis, rule};
      }
    }
  }
  return std::nullopt;
}

double Generator::MicroSeconds(OpId op_id, const SplitRule& rule, int p_num,
                               int part) const {
  const OpNode& node = graph_.node(op_id);
  std::vector<Shape> in = graph_.InputShapes(op_id);
  std::vector<Shape> out = graph_.OutputShapes(op_id);
  std::vector<Shape> micro_in = in;
  for (size_t i = 0; i < in.size(); ++i) {
    if (rule.input_axes[i] == kReplicateInput) continue;
    auto part_shape = in[i].SplitPart(rule.input_axes[i], p_num, part);
    if (part_shape.ok()) micro_in[i] = std::move(*part_shape);
  }
  std::vector<Shape> micro_out = out;
  auto part_shape = out[0].SplitPart(rule.output_axis, p_num, part);
  if (part_shape.ok()) micro_out[0] = std::move(*part_shape);
  return sim::KernelTime(profile_.device,
                         node.op->Flops(micro_in, micro_out),
                         node.op->BytesTouched(micro_in, micro_out));
}

size_t Generator::MicroWorkspace(OpId op_id, const SplitRule& rule, int p_num,
                                 int part) const {
  const OpNode& node = graph_.node(op_id);
  std::vector<Shape> in = graph_.InputShapes(op_id);
  std::vector<Shape> out = graph_.OutputShapes(op_id);
  std::vector<Shape> micro_in = in;
  for (size_t i = 0; i < in.size(); ++i) {
    if (rule.input_axes[i] == kReplicateInput) continue;
    auto part_shape = in[i].SplitPart(rule.input_axes[i], p_num, part);
    if (part_shape.ok()) micro_in[i] = std::move(*part_shape);
  }
  std::vector<Shape> micro_out = out;
  auto part_shape = out[0].SplitPart(rule.output_axis, p_num, part);
  if (part_shape.ok()) micro_out[0] = std::move(*part_shape);
  return node.op->WorkspaceBytes(micro_in, micro_out);
}

Status Generator::EnsureResident(const BufferKey& key, int pos, int depth) {
  if (depth > 64) {
    return Status::Internal("recompute recursion too deep");
  }
  switch (StateOf(key)) {
    case BufState::kResident:
      return Status::OK();
    case BufState::kHost:
      EmitSwapIn(key, pos);
      if (depth > 0) recompute_swapins_.push_back(key);
      return Status::OK();
    case BufState::kDropped:
    case BufState::kFreed:
    case BufState::kNone: {
      // Source tensors are resident from the start; reaching here for one
      // is an internal inconsistency.
      if (graph_.tensor(key.tensor).producer == kInvalidOp) {
        return Status::Internal("source tensor " +
                                graph_.tensor(key.tensor).name +
                                " unexpectedly not resident");
      }
      // Ephemeral fused interiors never materialize as device buffers; a
      // residency request for one means the planner leaked an interior to
      // an outside consumer (the verifier's TSV024 invariant).
      if (OptOf(key.tensor) == MemOpt::kFuse) {
        return Status::Internal("ephemeral fused interior " +
                                graph_.tensor(key.tensor).name +
                                " requested as a resident buffer");
      }
      return Recompute(key, pos, depth);
    }
  }
  return Status::OK();
}

Status Generator::Recompute(const BufferKey& key, int pos, int depth) {
  OpId producer = graph_.tensor(key.tensor).producer;
  if (!graph_.node(producer).op->recompute_safe()) {
    return Status::FailedPrecondition("op " + graph_.node(producer).name +
                                      " is not recompute-safe");
  }
  // A single micro-part regenerates alone when the producer supports it —
  // recomputing at micro-tensor granularity is precisely the split win.
  if (key.micro >= 0) {
    const OpNode& node = graph_.node(producer);
    SplitConfig split = SplitOf(key.tensor);
    std::vector<Shape> in = graph_.InputShapes(producer);
    std::vector<Shape> out = graph_.OutputShapes(producer);
    auto rule = node.op->SplitRuleFor(split.dim, in, out);
    if (node.outputs.size() == 1 && rule.ok()) {
      RETURN_IF_ERROR(
          EmitMicroPartExecution(producer, *rule, split.p_num, key.micro,
                                 pos, depth));
      if (StateOf(key) != BufState::kResident) {
        return Status::Internal("micro recompute failed for " +
                                graph_.tensor(key.tensor).name);
      }
      return Status::OK();
    }
  }
  RETURN_IF_ERROR(EmitOpExecution(producer, pos, /*is_recompute=*/true,
                                  depth + 1));
  if (StateOf(key) != BufState::kResident) {
    SplitConfig sc = SplitOf(key.tensor);
    std::optional<MicroExec> me = DecideMicroExec(producer);
    return Status::Internal(
        "recompute failed to materialize buffer of " +
        graph_.tensor(key.tensor).name + " t" +
        std::to_string(key.tensor) + "." + std::to_string(key.micro) +
        " state=" + std::to_string(static_cast<int>(StateOf(key))) +
        " producer=" + graph_.node(producer).name +
        " split=(" + std::to_string(sc.p_num) + "," +
        std::to_string(sc.dim) + ")" +
        " plansplit=(" +
        std::to_string(plan_.ConfigFor(key.tensor).split.p_num) + "," +
        std::to_string(plan_.ConfigFor(key.tensor).split.dim) + ")" +
        " micro_exec=" +
        (me.has_value() ? std::to_string(me->p_num) + "@" +
                              std::to_string(me->output_axis)
                        : std::string("none")));
  }
  return Status::OK();
}

void Generator::ReleaseChainInputs(const OpNode& node, int pos) {
  for (TensorId input : node.inputs) {
    TensorId root = RootOf(input);
    const RootInfo& info = roots_[static_cast<size_t>(root)];
    if (info.always_live || pinned_.count(root)) continue;
    if (pos <= info.fwd_last_use) continue;  // still forward-live
    for (const BufferKey& k : KeysOf(root)) {
      if (StateOf(k) != BufState::kResident) continue;
      if (OptOf(root) == MemOpt::kRecompute) {
        EmitDrop(k, pos);
      } else if (info.last_real_use <= pos) {
        // Checkpoint held only for recomputation: back to the host.
        EmitSwapOut(k, pos);
      }
    }
  }
}

Status Generator::EmitMicroPartExecution(OpId op_id, const SplitRule& rule,
                                         int p_num, int part, int pos,
                                         int depth) {
  const OpNode& node = graph_.node(op_id);
  PinScope pins(this, node);
  std::vector<std::vector<BufferKey>> input_keys;
  for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
    TensorId root = RootOf(node.inputs[idx]);
    int axis = rule.input_axes[idx];
    SplitConfig in_split = SplitOf(root);
    std::vector<BufferKey> group;
    if (axis != kReplicateInput && in_split.active() &&
        in_split.p_num == p_num && in_split.dim == axis) {
      BufferKey k{root, part};
      BufState before = StateOf(k);
      RETURN_IF_ERROR(EnsureResident(k, pos, depth + 1));
      if (before == BufState::kDropped) materialized_.push_back(k);
      group.push_back(k);
    } else {
      for (const BufferKey& k : KeysOf(root)) {
        BufState before = StateOf(k);
        RETURN_IF_ERROR(EnsureResident(k, pos, depth + 1));
        if (before == BufState::kDropped) materialized_.push_back(k);
        group.push_back(k);
      }
    }
    input_keys.push_back(std::move(group));
  }
  BufferKey out_key{node.outputs[0], part};
  EmitAlloc(out_key, pos);

  Step step;
  step.kind = StepKind::kCompute;
  step.op = op_id;
  step.micro = part;
  step.p_num = p_num;
  step.split_axis = rule.output_axis;
  step.inputs = std::move(input_keys);
  step.outputs = {out_key};
  step.seconds = MicroSeconds(op_id, rule, p_num, part);
  step.workspace_bytes = MicroWorkspace(op_id, rule, p_num, part);
  step.is_recompute = true;
  step.sched_pos = pos;
  program_.recompute_seconds += step.seconds;
  program_.steps.push_back(std::move(step));
  ++program_.num_micro_computes;
  if (options_.recompute_mode == RecomputeMode::kMemoryCentric) {
    ReleaseChainInputs(node, pos);
  }
  return Status::OK();
}

Status Generator::EmitFusedGroupExecution(const planner::FusionGroup& group,
                                          int pos) {
  // Pin every member's external roots for the whole group, so recompute
  // chains triggered while preparing a later member's inputs cannot evict
  // buffers an earlier member already produced or consumed.
  std::vector<TensorId> pin_roots;
  for (OpId op_id : group.ops) {
    const OpNode& node = graph_.node(op_id);
    for (TensorId input : node.inputs) pin_roots.push_back(RootOf(input));
    for (TensorId output : node.outputs) pin_roots.push_back(RootOf(output));
  }
  PinScope pins(this, std::move(pin_roots));

  std::unordered_set<TensorId> interior(group.interior.begin(),
                                        group.interior.end());
  Step step;
  step.kind = StepKind::kFusedOp;
  step.op = group.ops.front();
  step.fused_ops = group.ops;
  step.ephemeral = group.interior;
  step.sched_pos = pos;
  for (OpId op_id : group.ops) {
    const OpNode& node = graph_.node(op_id);
    for (TensorId input : node.inputs) {
      TensorId root = RootOf(input);
      std::vector<BufferKey> keys;
      if (interior.count(root) > 0) {
        // Scratch-held interior: the key wires the member dataflow, but no
        // device residency is established (and none may be).
        keys.push_back(BufferKey{root, -1});
      } else {
        for (const BufferKey& k : KeysOf(root)) {
          BufState before = StateOf(k);
          RETURN_IF_ERROR(EnsureResident(k, pos, /*depth=*/0));
          if (before == BufState::kDropped) materialized_.push_back(k);
          keys.push_back(k);
        }
      }
      step.inputs.push_back(std::move(keys));
    }
    // Members are single-output by construction (finder + plan verifier),
    // and the planner only fuses groups whose boundaries are unsplit.
    TensorId out = node.outputs[0];
    BufferKey out_key{out, -1};
    if (interior.count(out) > 0) {
      // Sized for executor scratch / diagnostics; never pool-allocated.
      program_.buffer_bytes[out_key] = KeyBytes(out_key);
    } else {
      EmitAlloc(out_key, pos);
    }
    step.outputs.push_back(out_key);
    const auto& op_profile = profile_.ops[static_cast<size_t>(op_id)];
    step.seconds += op_profile.seconds;
    // Members run back-to-back inside the step, so only the largest
    // member workspace is ever held at once.
    step.workspace_bytes =
        std::max(step.workspace_bytes, op_profile.workspace_bytes);
  }
  program_.steps.push_back(std::move(step));
  return Status::OK();
}

void Generator::PostExecCleanup(int pos) {
  // Ancestors swapped in only to feed a recompute subgraph return to the
  // host (or die) once the op completes.
  for (const BufferKey& k : recompute_swapins_) {
    if (StateOf(k) != BufState::kResident) continue;
    if (HasUseAfter(k.tensor, pos)) {
      EmitSwapOut(k, pos);
    } else if (!roots_[static_cast<size_t>(k.tensor)].always_live) {
      EmitFree(k, pos);
    }
  }

  // Recompute-policy cleanup: ancestors materialized for this op.
  for (const BufferKey& k : materialized_) {
    if (StateOf(k) != BufState::kResident) continue;
    bool used_later = HasUseAfter(k.tensor, pos);
    if (!used_later) {
      if (!roots_[static_cast<size_t>(k.tensor)].always_live) {
        EmitFree(k, pos);
      }
      continue;
    }
    switch (options_.recompute_mode) {
      case RecomputeMode::kMemoryCentric:
        if (OptOf(k.tensor) == MemOpt::kRecompute) EmitDrop(k, pos);
        break;
      case RecomputeMode::kSpeedCentric:
        break;  // keep resident; freed at its real last use
      case RecomputeMode::kLru: {
        size_t bytes = KeyBytes(k);
        if (lru_kept_bytes_ + bytes <= options_.lru_budget_bytes) {
          lru_kept_bytes_ += bytes;
        } else if (OptOf(k.tensor) == MemOpt::kRecompute) {
          EmitDrop(k, pos);
        }
        break;
      }
    }
  }
}

void Generator::ApplyEndOfLife(const BufferKey& key, int pos) {
  if (StateOf(key) != BufState::kResident) return;
  TensorId root = key.tensor;
  const RootInfo& info = roots_[static_cast<size_t>(root)];
  bool used_later = HasUseAfter(root, pos);
  if (!used_later) {
    if (!info.always_live) EmitFree(key, pos);
    return;
  }
  if (pos < info.fwd_last_use) return;  // still needed in the forward phase
  switch (OptOf(root)) {
    case MemOpt::kSwap:
      EmitSwapOut(key, pos);
      break;
    case MemOpt::kRecompute: {
      OpId producer = graph_.tensor(root).producer;
      if (producer != kInvalidOp &&
          graph_.node(producer).op->recompute_safe()) {
        EmitDrop(key, pos);
      }
      break;
    }
    case MemOpt::kReside:
      if (info.last_real_use <= pos) {
        // Alive only to serve future recomputation (virtual uses): park it
        // on the host instead of pinning device memory — the recompute
        // checkpoint behaviour SuperNeurons applies to conv outputs.
        EmitSwapOut(key, pos);
      }
      break;
    case MemOpt::kFuse:
      // Ephemeral interiors are never resident (the guard above already
      // returned); nothing to evict.
      break;
  }
}

Status Generator::EmitOpExecution(OpId op_id, int pos, bool is_recompute,
                                  int depth) {
  const OpNode& node = graph_.node(op_id);
  TSPLIT_CHECK(!node.op->is_view());
  PinScope pins(this, node);

  std::optional<MicroExec> micro = DecideMicroExec(op_id);

  // Tracks recompute-materialized ancestors for the cleanup pass. Inputs
  // that were Dropped before this op and have plan opt == recompute are
  // candidates for re-dropping under the memory-centric policy.
  auto note_materialized = [&](const BufferKey& k, BufState before) {
    if (before == BufState::kDropped) materialized_.push_back(k);
  };

  auto outputs_whole_keys = [&]() {
    std::vector<BufferKey> keys;
    for (TensorId out : node.outputs) keys.push_back(BufferKey{out, -1});
    return keys;
  };

  if (!micro.has_value()) {
    // ---- Whole-tensor execution ----
    std::vector<std::vector<BufferKey>> input_keys;
    for (TensorId input : node.inputs) {
      TensorId root = RootOf(input);
      std::vector<BufferKey> group;
      for (const BufferKey& k : KeysOf(root)) {
        BufState before = StateOf(k);
        RETURN_IF_ERROR(EnsureResident(k, pos, depth));
        note_materialized(k, before);
        group.push_back(k);
      }
      input_keys.push_back(std::move(group));
    }
    std::vector<BufferKey> out_keys = outputs_whole_keys();
    for (const BufferKey& k : out_keys) EmitAlloc(k, pos);

    Step step;
    step.kind = StepKind::kCompute;
    step.op = op_id;
    step.inputs = input_keys;
    step.outputs = out_keys;
    step.seconds = profile_.ops[static_cast<size_t>(op_id)].seconds;
    step.workspace_bytes =
        profile_.ops[static_cast<size_t>(op_id)].workspace_bytes;
    step.is_recompute = is_recompute;
    step.sched_pos = pos;
    if (is_recompute) program_.recompute_seconds += step.seconds;
    program_.steps.push_back(std::move(step));

    // Outputs planned as split but not producible micro-wise: scatter into
    // micro buffers (the paper's inserted split op).
    for (TensorId out : node.outputs) {
      SplitConfig split = SplitOf(out);
      if (!split.active()) continue;
      for (const BufferKey& k : KeysOf(out)) EmitAlloc(k, pos);
      Step& copy = Emit(StepKind::kSplitCopy, BufferKey{out, -1}, pos);
      copy.bytes = graph_.tensor(out).size_bytes();
      EmitFree(BufferKey{out, -1}, pos);
    }
    if (is_recompute) {
      // Everything a recompute produced is transient state owned by the
      // cleanup pass (memory-centric re-drop / speed-centric keep).
      for (TensorId out : node.outputs) {
        for (const BufferKey& k : KeysOf(out)) materialized_.push_back(k);
      }
      if (options_.recompute_mode == RecomputeMode::kMemoryCentric) {
        ReleaseChainInputs(node, pos);
      }
    }
    return Status::OK();
  }

  // ---- Micro execution ----
  const MicroExec& exec = *micro;
  TensorId out_tensor = node.outputs[0];
  SplitConfig out_split = SplitOf(out_tensor);
  bool out_per_part = out_split.active() &&
                      out_split.p_num == exec.p_num &&
                      out_split.dim == exec.output_axis;

  // Classify inputs once.
  struct InputMode {
    TensorId root;
    bool per_part = false;   // consume micro j at part j
    int cover_ratio = 0;     // >0: part j reads covering part j/ratio
                             // in place (§V-C: batch-axis re-split shares
                             // storage, no merge copy)
  };
  std::vector<InputMode> modes;
  modes.reserve(node.inputs.size());
  for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
    InputMode mode;
    mode.root = RootOf(node.inputs[idx]);
    int axis = exec.rule.input_axes[idx];
    // Per-part consumption requires the rule axis and the split dim to be
    // in the same coordinate system: the input must be its own root.
    if (axis != kReplicateInput && mode.root == node.inputs[idx]) {
      SplitConfig in_split = SplitOf(mode.root);
      if (in_split.active() && in_split.dim == axis) {
        if (in_split.p_num == exec.p_num) {
          mode.per_part = true;
        } else if (axis == 0 && exec.p_num % in_split.p_num == 0 &&
                   graph_.tensor(mode.root).shape.dim(0) % exec.p_num ==
                       0) {
          // Refining a coarser batch-axis split: each exec part is a
          // contiguous view into one covering input part — consume it
          // directly instead of merging the whole tensor.
          mode.cover_ratio = exec.p_num / in_split.p_num;
        }
      }
    }
    modes.push_back(mode);
  }

  // Non-per-part inputs must be fully resident before the part loop. An
  // input split with a mismatching config is merged first (the paper's
  // inserted merge&split for p_num changes).
  std::vector<BufferKey> transient_merges;
  for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
    if (modes[idx].per_part || modes[idx].cover_ratio > 0) continue;
    TensorId root = modes[idx].root;
    SplitConfig in_split = SplitOf(root);
    bool mismatched_split =
        in_split.active() && exec.rule.input_axes[idx] != kReplicateInput;
    for (const BufferKey& k : KeysOf(root)) {
      BufState before = StateOf(k);
      RETURN_IF_ERROR(EnsureResident(k, pos, depth));
      note_materialized(k, before);
    }
    if (mismatched_split) {
      // Materialize the whole tensor transiently (the paper's inserted
      // merge&split for p_num changes); freed after the part loop.
      if (StateOf(BufferKey{root, -1}) != BufState::kResident) {
        EmitAlloc(BufferKey{root, -1}, pos);
        Step& merge = Emit(StepKind::kMergeCopy, BufferKey{root, -1}, pos);
        merge.bytes = graph_.tensor(root).size_bytes();
        transient_merges.push_back(BufferKey{root, -1});
      }
    }
  }

  if (!out_per_part) EmitAlloc(BufferKey{out_tensor, -1}, pos);

  for (int part = 0; part < exec.p_num; ++part) {
    std::vector<std::vector<BufferKey>> input_keys;
    for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
      TensorId root = modes[idx].root;
      std::vector<BufferKey> group;
      if (modes[idx].per_part) {
        BufferKey k{root, part};
        BufState before = StateOf(k);
        RETURN_IF_ERROR(EnsureResident(k, pos, depth));
        note_materialized(k, before);
        group.push_back(k);
      } else if (modes[idx].cover_ratio > 0) {
        BufferKey k{root, part / modes[idx].cover_ratio};
        BufState before = StateOf(k);
        RETURN_IF_ERROR(EnsureResident(k, pos, depth));
        note_materialized(k, before);
        group.push_back(k);
      } else {
        SplitConfig in_split = SplitOf(root);
        bool mismatched_split =
            in_split.active() && exec.rule.input_axes[idx] != kReplicateInput;
        if (in_split.active() && !mismatched_split) {
          for (const BufferKey& k : KeysOf(root)) group.push_back(k);
        } else {
          group.push_back(BufferKey{root, -1});
        }
      }
      input_keys.push_back(std::move(group));
    }
    BufferKey out_key =
        out_per_part ? BufferKey{out_tensor, part} : BufferKey{out_tensor, -1};
    if (out_per_part) EmitAlloc(out_key, pos);

    Step step;
    step.kind = StepKind::kCompute;
    step.op = op_id;
    step.micro = part;
    step.p_num = exec.p_num;
    step.split_axis = exec.output_axis;
    step.inputs = std::move(input_keys);
    step.outputs = {out_key};
    step.seconds = MicroSeconds(op_id, exec.rule, exec.p_num, part);
    step.workspace_bytes = MicroWorkspace(op_id, exec.rule, exec.p_num, part);
    step.is_recompute = is_recompute;
    step.sched_pos = pos;
    if (is_recompute) program_.recompute_seconds += step.seconds;
    program_.steps.push_back(std::move(step));
    ++program_.num_micro_computes;

    if (!is_recompute) {
      // Early eviction of consumed input micro-parts whose forward life
      // ends here (paper §III-A: evict input micro-tensors to make room).
      for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
        TensorId root = modes[idx].root;
        const RootInfo& info = roots_[static_cast<size_t>(root)];
        if (pos < info.fwd_last_use) continue;
        if (modes[idx].per_part) {
          ApplyEndOfLife(BufferKey{root, part}, pos);
        } else if (modes[idx].cover_ratio > 0 &&
                   (part + 1) % modes[idx].cover_ratio == 0) {
          // The covering part is fully consumed once its last refined
          // exec part completes.
          ApplyEndOfLife(BufferKey{root, part / modes[idx].cover_ratio},
                         pos);
        }
      }
      // Early swap-out of produced micro-parts with no later forward
      // consumer (paper §III-A: early swapping of output micro-tensors).
      if (out_per_part) {
        const RootInfo& info = roots_[static_cast<size_t>(out_tensor)];
        if (info.fwd_last_use <= pos && HasUseAfter(out_tensor, pos) &&
            OptOf(out_tensor) == MemOpt::kSwap) {
          EmitSwapOut(out_key, pos);
        }
      }
    } else {
      materialized_.push_back(out_key);
      if (options_.recompute_mode == RecomputeMode::kMemoryCentric) {
        // Recompute chain hygiene at micro granularity: a consumed part of
        // a non-pinned ancestor leaves the device before the next part's
        // chain materializes (keeps deep chains at O(1) extra memory).
        for (size_t idx = 0; idx < node.inputs.size(); ++idx) {
          if (!modes[idx].per_part) continue;
          TensorId root = modes[idx].root;
          const RootInfo& info = roots_[static_cast<size_t>(root)];
          if (pinned_.count(root) || pos <= info.fwd_last_use) continue;
          ApplyEndOfLife(BufferKey{root, part}, pos);
        }
      }
    }
  }
  // The op executed along a different granularity than the output's own
  // split config (e.g. a channel-wise micro-execution of a sample-split
  // tensor): scatter the whole result into its configured micro buffers.
  if (!out_per_part) {
    SplitConfig out_cfg = SplitOf(out_tensor);
    if (out_cfg.active()) {
      for (const BufferKey& k : KeysOf(out_tensor)) {
        EmitAlloc(k, pos);
        if (is_recompute) materialized_.push_back(k);
      }
      Step& copy = Emit(StepKind::kSplitCopy, BufferKey{out_tensor, -1}, pos);
      copy.bytes = graph_.tensor(out_tensor).size_bytes();
      EmitFree(BufferKey{out_tensor, -1}, pos);
    }
  }
  for (const BufferKey& merged : transient_merges) {
    if (StateOf(merged) == BufState::kResident) EmitFree(merged, pos);
  }
  return Status::OK();
}

Result<Program> Generator::Run() {
  Precompute();

  for (const TensorDesc& tensor : graph_.tensors()) {
    SplitConfig split = SplitOf(tensor.id);
    if (split.active()) program_.split_configs[tensor.id] = split;
  }

  // Source tensors start resident (parameters / inputs are uploaded before
  // the iteration; the paper counts them in the initial requirement M_0).
  for (const TensorDesc& tensor : graph_.tensors()) {
    if (tensor.producer != kInvalidOp) continue;
    for (const BufferKey& k : KeysOf(tensor.id)) {
      SetState(k, BufState::kResident);
      program_.buffer_bytes[k] = KeyBytes(k);
    }
    // State the plan offloads and the iteration never touches (optimizer
    // moments under ZeRO-Offload) leaves the device immediately.
    const RootInfo& info = roots_[static_cast<size_t>(tensor.id)];
    if (OptOf(tensor.id) == MemOpt::kSwap && info.use_positions.empty()) {
      for (const BufferKey& k : KeysOf(tensor.id)) EmitSwapOut(k, 0);
    }
  }

  for (int pos = 0; pos < schedule_.num_steps(); ++pos) {
    OpId op_id = schedule_.order[static_cast<size_t>(pos)];
    const OpNode& node = graph_.node(op_id);
    if (node.op->is_view()) continue;

    int group_idx = fused_group_of_[static_cast<size_t>(op_id)];
    if (group_idx < 0) {
      materialized_.clear();
      recompute_swapins_.clear();
      RETURN_IF_ERROR(EmitOpExecution(op_id, pos, /*is_recompute=*/false,
                                      /*depth=*/0));
      PostExecCleanup(pos);
    } else if (op_id == plan_.fusion_groups[static_cast<size_t>(group_idx)]
                            .ops.front()) {
      // The whole fused group executes as one step at its first member's
      // position; later member positions emit no compute of their own but
      // still run the end-of-life passes below, so external inputs evict
      // at the same schedule position they would unfused.
      materialized_.clear();
      recompute_swapins_.clear();
      RETURN_IF_ERROR(EmitFusedGroupExecution(
          plan_.fusion_groups[static_cast<size_t>(group_idx)], pos));
      PostExecCleanup(pos);
    }

    // End-of-life pass over this op's inputs and dead outputs.
    std::unordered_set<TensorId> seen;
    for (TensorId input : node.inputs) {
      TensorId root = RootOf(input);
      if (!seen.insert(root).second) continue;
      const RootInfo& info = roots_[static_cast<size_t>(root)];
      bool at_eviction_point = pos == info.fwd_last_use;
      bool at_death =
          !info.use_positions.empty() && pos == info.use_positions.back();
      if (!at_eviction_point && !at_death) continue;
      for (const BufferKey& k : KeysOf(root)) ApplyEndOfLife(k, pos);
    }
    // Outputs with no forward consumer left (everything that reads them is
    // in the backward phase) evict right after production.
    for (TensorId output : node.outputs) {
      TensorId root = RootOf(output);
      if (root != output) continue;
      const RootInfo& info = roots_[static_cast<size_t>(root)];
      if (!info.use_positions.empty() && info.fwd_last_use == pos &&
          HasUseAfter(root, pos) && OptOf(root) != MemOpt::kReside) {
        for (const BufferKey& k : KeysOf(root)) ApplyEndOfLife(k, pos);
      }
    }
    for (TensorId output : node.outputs) {
      TensorId root = RootOf(output);
      if (root != output) continue;
      const RootInfo& info = roots_[static_cast<size_t>(root)];
      if (!info.use_positions.empty() || info.always_live) continue;
      if (graph_.tensor(root).kind == TensorKind::kParamGrad) {
        // Parameter gradients are the iteration's result: they persist, or
        // stream to the CPU when the plan offloads them (ZeRO-Offload).
        if (OptOf(root) == MemOpt::kSwap) {
          for (const BufferKey& k : KeysOf(root)) {
            if (StateOf(k) == BufState::kResident) EmitSwapOut(k, pos);
          }
        }
        continue;
      }
      // Dead output (e.g. an unused auxiliary stat tensor).
      for (const BufferKey& k : KeysOf(root)) {
        if (StateOf(k) == BufState::kResident) EmitFree(k, pos);
      }
    }
  }
  return std::move(program_);
}

}  // namespace

Result<Program> GenerateProgram(const Graph& graph, const Schedule& schedule,
                                const planner::Plan& plan,
                                const planner::GraphProfile& profile,
                                const ProgramOptions& options) {
  Generator generator(graph, schedule, plan, profile, options);
  return generator.Run();
}

}  // namespace tsplit::rewrite
