// tsplit_lint: static verification of TSPLIT planning artifacts without
// executing them. Builds a model, schedules it, obtains a plan (from a
// planner or a plan file), generates the augmented program, lowers it, and
// runs every analysis/verifier.h lint over the chain. Findings print as
// "severity[CODE] message (location)" lines, or as a JSON report with
// --format=json.
//
// Usage:
//   tsplit_lint [--model NAME] [--batch N] [--scale F]
//               [--planner NAME | --plan FILE]
//               [--capacity-mb N | --fraction F] [--lookahead N]
//               [--passes STR] [--format text|json]
//               [--dump-plan] [--dump-compiled] [--dump-deps dot|text]
//               [--corrupt KIND] [--list-codes]
//
//   --model NAME      model zoo name (default MLP; see models::BuildByName)
//   --batch N         batch size (default 8)
//   --scale F         parameter-scale knob (default 1.0)
//   --planner NAME    planner to build the plan with (default TSPLIT)
//   --plan FILE       load the plan from FILE instead of planning
//   --capacity-mb N   device budget in MiB for planning + feasibility
//   --fraction F      derive the budget: floor + F * (peak - floor)
//                     (default 0.6 when --capacity-mb is absent)
//   --lookahead N     compile-time swap-in prefetch depth (default 0)
//   --passes STR      compiled pass selection: "all", "none", or a comma
//                     subset of {dce,color,autotune,reorder,batch}
//                     (default all)
//   --format KIND     text (default) or json: one JSON object on stdout
//                     with the run summary and the diagnostics array
//                     (analysis::RenderAllJson); --dump-plan and
//                     --dump-compiled text is suppressed (their compile
//                     options still apply) and --dump-deps goes to stderr
//   --dump-plan       print the plan's strategy histogram (tensors per
//                     reside/swap/recompute/fuse, split counts, bytes per
//                     strategy and ephemeral bytes avoided by fusion) and
//                     each fused group's member chain
//   --dump-compiled   compile with executor-equivalent pass options
//                     (Trainer's steady state: freed values unobservable,
//                     real pool capacity, autotune on) and print the pass
//                     pipeline stats, slot lifetimes, workspace high-water
//                     and the final instruction stream
//   --dump-deps KIND  print the compiled stream's happens-before
//                     dependence graph (analysis/depgraph.h) as graphviz
//                     ("dot") or a readable edge list ("text")
//   --corrupt KIND    inject a deliberate defect first (self-test/demo):
//                       swap-in-after-use  move a kSwapIn past its consumer
//                       overlap-offsets    overlap compiled scatter extents
//                       recompute-rng      mark an RNG op's compute step
//                                          as recompute
//                       drop-fence         unfence a pending swap-in's
//                                          first consumer (TSV026)
//                       forget-fence       unfence a never-transferred
//                                          touched slot (TSV027)
//                       double-swap-in     duplicate a kSwapIn while the
//                                          first is in flight (TSV028)
//                       free-in-flight     free a slot whose swap-in has
//                                          not landed (TSV029)
//                       dup-batch-slot     duplicate a pool-op batch
//                                          member (TSV030)
//                       stale-fence        fence a slot the compute never
//                                          touches (TSV031)
//   --list-codes      print the diagnostic registry and exit
//
// Exit status: 0 = clean (warnings allowed), 1 = error-severity
// diagnostics, 2 = usage error or pipeline failure.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/diagnostic.h"
#include "analysis/verifier.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "ops/dropout.h"
#include "planner/plan_io.h"
#include "planner/planner.h"
#include "planner/profile.h"
#include "rewrite/program.h"
#include "runtime/compiled_program.h"

namespace {

using namespace tsplit;  // NOLINT(google-build-using-namespace)

struct Args {
  std::string model = "MLP";
  int batch = 8;
  double scale = 1.0;
  std::string planner = "TSPLIT";
  std::string plan_file;
  size_t capacity_mb = 0;
  double fraction = 0.6;
  int lookahead = 0;
  std::string passes = "all";
  std::string format = "text";
  bool dump_plan = false;
  bool dump_compiled = false;
  std::string dump_deps;
  std::string corrupt;
  bool list_codes = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tsplit_lint [--model NAME] [--batch N] [--scale F]\n"
      "                   [--planner NAME | --plan FILE]\n"
      "                   [--capacity-mb N | --fraction F] [--lookahead N]\n"
      "                   [--passes STR] [--format text|json]\n"
      "                   [--dump-plan] [--dump-compiled]"
      " [--dump-deps dot|text]\n"
      "                   [--corrupt swap-in-after-use|overlap-offsets|"
      "recompute-rng|\n"
      "                             drop-fence|forget-fence|double-swap-in|"
      "free-in-flight|\n"
      "                             dup-batch-slot|stale-fence]\n"
      "                   [--list-codes]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Both "--flag value" and "--flag=value" spellings are accepted.
    std::string inline_value;
    bool has_inline = false;
    const size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
      has_inline = true;
    }
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--list-codes") {
      args->list_codes = true;
    } else if (flag == "--model") {
      const char* v = value();
      if (v == nullptr) return false;
      args->model = v;
    } else if (flag == "--batch") {
      const char* v = value();
      if (v == nullptr) return false;
      args->batch = std::atoi(v);
    } else if (flag == "--scale") {
      const char* v = value();
      if (v == nullptr) return false;
      args->scale = std::atof(v);
    } else if (flag == "--planner") {
      const char* v = value();
      if (v == nullptr) return false;
      args->planner = v;
    } else if (flag == "--plan") {
      const char* v = value();
      if (v == nullptr) return false;
      args->plan_file = v;
    } else if (flag == "--capacity-mb") {
      const char* v = value();
      if (v == nullptr) return false;
      args->capacity_mb = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--fraction") {
      const char* v = value();
      if (v == nullptr) return false;
      args->fraction = std::atof(v);
    } else if (flag == "--lookahead") {
      const char* v = value();
      if (v == nullptr) return false;
      args->lookahead = std::atoi(v);
    } else if (flag == "--passes") {
      const char* v = value();
      if (v == nullptr) return false;
      args->passes = v;
    } else if (flag == "--format") {
      const char* v = value();
      if (v == nullptr) return false;
      args->format = v;
    } else if (flag == "--dump-plan") {
      args->dump_plan = true;
    } else if (flag == "--dump-compiled") {
      args->dump_compiled = true;
    } else if (flag == "--dump-deps") {
      const char* v = value();
      if (v == nullptr) return false;
      args->dump_deps = v;
    } else if (flag == "--corrupt") {
      const char* v = value();
      if (v == nullptr) return false;
      args->corrupt = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void ListCodes() {
  for (const analysis::DiagnosticInfo& info :
       analysis::DiagnosticRegistry()) {
    std::printf("%s  %-7s  %s\n", info.code,
                analysis::SeverityToString(info.severity), info.summary);
  }
}

// A dropout whose mask is NOT derivable from a stored seed: the one op
// family whose recomputation is semantically unsafe. Used to demonstrate
// TSV006 on an otherwise valid program.
class UnseededDropoutOp : public ops::DropoutOp {
 public:
  UnseededDropoutOp() : ops::DropoutOp(0.1f, 42) {}
  std::string type_name() const override { return "UnseededDropout"; }
  bool recompute_safe() const override { return false; }
};

// Moves the first kSwapIn step to just after the first later compute that
// reads its buffer — the swap-in now lands too late (TSV004).
bool CorruptSwapInAfterUse(rewrite::Program* program) {
  for (size_t i = 0; i < program->steps.size(); ++i) {
    if (program->steps[i].kind != rewrite::StepKind::kSwapIn) continue;
    const rewrite::BufferKey key = program->steps[i].buffer;
    for (size_t j = i + 1; j < program->steps.size(); ++j) {
      const rewrite::Step& step = program->steps[j];
      if (step.kind != rewrite::StepKind::kCompute) continue;
      bool reads = false;
      for (const auto& group : step.inputs) {
        for (const auto& k : group) reads = reads || k == key;
      }
      if (!reads) continue;
      rewrite::Step moved = program->steps[i];
      program->steps.erase(program->steps.begin() +
                           static_cast<ptrdiff_t>(i));
      program->steps.insert(program->steps.begin() +
                                static_cast<ptrdiff_t>(j),  // j shifted left
                            std::move(moved));
      return true;
    }
  }
  return false;
}

// Duplicates a compiled scatter offset so two micro parts overlap
// (TSV023).
bool CorruptOverlapOffsets(runtime::CompiledProgram* compiled) {
  for (auto& scatter : compiled->scatters) {
    if (scatter.offsets.size() >= 2) {
      scatter.offsets[1] = scatter.offsets[0];
      return true;
    }
  }
  for (auto& merge : compiled->merges) {
    if (merge.offsets.size() >= 2) {
      merge.offsets[1] = merge.offsets[0];
      return true;
    }
  }
  return false;
}

// Marks the RNG-bearing op's compute step as a recompute (TSV006).
bool CorruptRecomputeRng(const Graph& graph, rewrite::Program* program) {
  for (rewrite::Step& step : program->steps) {
    if (step.kind != rewrite::StepKind::kCompute) continue;
    if (step.op < 0 || step.op >= graph.num_ops()) continue;
    if (!graph.node(step.op).op->recompute_safe()) {
      step.is_recompute = true;
      return true;
    }
  }
  return false;
}

// Removes a pending kSwapIn's slot from its first consuming compute's
// fence set: the consumer now races the copy engine (TSV026, plus the
// TSV027 fence-gap warning). Pairs crossed by another transfer are
// skipped — a later fence could retire the ticket through FIFO credit
// and mask the defect.
bool CorruptDropFence(runtime::CompiledProgram* cp) {
  using runtime::compiled::InstrKind;
  for (size_t i = 0; i < cp->instrs.size(); ++i) {
    if (cp->instrs[i].kind != InstrKind::kSwapIn) continue;
    const int slot = cp->instrs[i].slot;
    for (size_t j = i + 1; j < cp->instrs.size(); ++j) {
      const auto& ins = cp->instrs[j];
      if (ins.kind == InstrKind::kSwapIn ||
          ins.kind == InstrKind::kSwapOut ||
          ins.kind == InstrKind::kFusedCompute) {
        break;
      }
      if (ins.kind != InstrKind::kCompute) continue;
      auto& fences =
          cp->computes[static_cast<size_t>(ins.aux)].fence_slots;
      auto it = std::find(fences.begin(), fences.end(), slot);
      if (it == fences.end()) continue;
      fences.erase(it);
      return true;
    }
  }
  return false;
}

// Removes from a compute's fence set a touched slot that is never
// transferred: no ticket is ever outstanding on it, so only the latent
// fence-gap warning fires (TSV027 without TSV026).
bool CorruptForgetFence(runtime::CompiledProgram* cp) {
  using runtime::compiled::InstrKind;
  std::vector<char> transferred(cp->slots.size(), 0);
  for (const auto& ins : cp->instrs) {
    if (ins.kind == InstrKind::kSwapIn || ins.kind == InstrKind::kSwapOut) {
      transferred[static_cast<size_t>(ins.slot)] = 1;
    }
  }
  for (const auto& ins : cp->instrs) {
    if (ins.kind != InstrKind::kCompute) continue;
    auto& fences = cp->computes[static_cast<size_t>(ins.aux)].fence_slots;
    for (auto it = fences.begin(); it != fences.end(); ++it) {
      if (!transferred[static_cast<size_t>(*it)]) {
        fences.erase(it);
        return true;
      }
    }
  }
  return false;
}

// Duplicates a kSwapIn immediately after itself: the second H2D issue
// lands on a slot whose first transfer has not retired (TSV028).
bool CorruptDoubleSwapIn(runtime::CompiledProgram* cp) {
  using runtime::compiled::InstrKind;
  for (size_t i = 0; i < cp->instrs.size(); ++i) {
    if (cp->instrs[i].kind != InstrKind::kSwapIn) continue;
    cp->instrs.insert(cp->instrs.begin() + static_cast<ptrdiff_t>(i) + 1,
                      cp->instrs[i]);
    return true;
  }
  return false;
}

// Inserts a kFree right behind a kSwapIn of the same slot: the copy
// engine still owns the storage when the pool reclaims it (TSV029).
bool CorruptFreeInFlight(runtime::CompiledProgram* cp) {
  using runtime::compiled::Instr;
  using runtime::compiled::InstrKind;
  for (size_t i = 0; i < cp->instrs.size(); ++i) {
    if (cp->instrs[i].kind != InstrKind::kSwapIn) continue;
    Instr free_ins;
    free_ins.kind = InstrKind::kFree;
    free_ins.slot = cp->instrs[i].slot;
    cp->instrs.insert(cp->instrs.begin() + static_cast<ptrdiff_t>(i) + 1,
                      free_ins);
    return true;
  }
  return false;
}

// Duplicates a pool-op batch member so the batch's internal order becomes
// observable (TSV030) — the compiled analogue of overlap-offsets.
bool CorruptDupBatchSlot(runtime::CompiledProgram* cp) {
  for (auto& batch : cp->batches) {
    if (batch.size() >= 2) {
      batch[1] = batch[0];
      return true;
    }
  }
  return false;
}

// Appends an untouched (but always-live stage) slot to a compute's fence
// set: a stale entry forcing a spurious stall (TSV031).
bool CorruptStaleFence(runtime::CompiledProgram* cp) {
  using runtime::compiled::InstrKind;
  for (const auto& ins : cp->instrs) {
    if (ins.kind != InstrKind::kCompute) continue;
    auto& fences = cp->computes[static_cast<size_t>(ins.aux)].fence_slots;
    for (const auto& stage : cp->stages) {
      if (std::find(fences.begin(), fences.end(), stage.slot) ==
          fences.end()) {
        fences.push_back(stage.slot);
        return true;
      }
    }
  }
  return false;
}

// Minimal JSON string escaping for the --format=json wrapper fields.
std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string SlotName(const Graph& graph, const runtime::CompiledProgram& cp,
                     int slot) {
  if (slot < 0 || static_cast<size_t>(slot) >= cp.slots.size()) {
    return "s" + std::to_string(slot);
  }
  const auto& key = cp.slots[static_cast<size_t>(slot)].key;
  std::string name = key.tensor >= 0 && key.tensor < graph.num_tensors()
                         ? graph.tensor(key.tensor).name
                         : "t" + std::to_string(key.tensor);
  if (key.micro >= 0) name += "." + std::to_string(key.micro);
  return name;
}

// Prints the plan's strategy histogram: tensors and bytes per memory
// strategy (split counted both ways), plus each fused group's member
// chain and the pool bytes its interiors never occupy.
void DumpPlan(const Graph& graph, const planner::Plan& plan) {
  struct Bucket {
    size_t tensors = 0;
    size_t split = 0;
    size_t bytes = 0;
  };
  Bucket buckets[4];
  for (const auto& [id, config] : plan.configs) {
    auto& b = buckets[static_cast<size_t>(config.opt)];
    b.tensors += 1;
    if (config.split.active()) b.split += 1;
    if (id >= 0 && id < graph.num_tensors()) {
      b.bytes += graph.tensor(id).size_bytes();
    }
  }
  std::printf("== plan (%s) ==\n", plan.planner_name.c_str());
  std::printf("%-10s %8s %8s %12s\n", "strategy", "tensors", "split",
              "KiB");
  for (MemOpt opt : {MemOpt::kReside, MemOpt::kSwap, MemOpt::kRecompute,
                     MemOpt::kFuse}) {
    const Bucket& b = buckets[static_cast<size_t>(opt)];
    std::printf("%-10s %8zu %8zu %12.1f\n", MemOptToString(opt), b.tensors,
                b.split, static_cast<double>(b.bytes) / 1024.0);
  }
  std::printf("fusion groups=%zu ephemeral_bytes_avoided=%zu KiB\n",
              plan.fusion_groups.size(),
              plan.EphemeralBytes(graph) >> 10);
  for (size_t g = 0; g < plan.fusion_groups.size(); ++g) {
    const planner::FusionGroup& group = plan.fusion_groups[g];
    std::printf("  group %zu:", g);
    for (OpId op : group.ops) {
      std::printf(" %s", op >= 0 && op < graph.num_ops()
                             ? graph.node(op).name.c_str()
                             : "?");
    }
    size_t interior_bytes = 0;
    for (TensorId t : group.interior) {
      if (t >= 0 && t < graph.num_tensors()) {
        interior_bytes += graph.tensor(t).size_bytes();
      }
    }
    std::printf("  (%zu interior, %zu KiB ephemeral)\n",
                group.interior.size(), interior_bytes >> 10);
  }
}

// Prints the pass-pipeline stats, per-slot lifetimes, workspace
// high-water and the final instruction stream of `cp`.
void DumpCompiled(const Graph& graph, const runtime::CompiledProgram& cp) {
  using runtime::compiled::Instr;
  using runtime::compiled::InstrKind;

  std::printf("== pass pipeline ==\n");
  if (cp.pass_stats.empty()) {
    std::printf("(no passes ran)\n");
  } else {
    std::printf("%-9s %-8s %8s  %-14s %-12s %-20s %s\n", "pass", "state",
                "wall_ms", "instrs", "slots", "static KiB", "note");
    for (const auto& p : cp.pass_stats) {
      std::string instrs = std::to_string(p.instrs_before) + "->" +
                           std::to_string(p.instrs_after);
      std::string slots = std::to_string(p.slots_before) + "->" +
                          std::to_string(p.slots_after);
      std::string bytes = std::to_string(p.static_bytes_before >> 10) +
                          "->" + std::to_string(p.static_bytes_after >> 10);
      std::printf("%-9s %-8s %8.2f  %-14s %-12s %-20s %s\n", p.name.c_str(),
                  p.rolled_back ? "ROLLBACK"
                                : (p.changed ? "changed" : "no-op"),
                  p.wall_seconds * 1e3, instrs.c_str(), slots.c_str(),
                  bytes.c_str(), p.note.c_str());
    }
  }

  // Slot lifetimes: first/last instruction position touching each slot
  // (stages count as position -1, "end" marks survival past the stream).
  const size_t n = cp.slots.size();
  const int stream_end = static_cast<int>(cp.instrs.size());
  std::vector<int> first(n, stream_end);
  std::vector<int> last(n, -2);
  std::vector<char> live(n, 0);
  for (const auto& st : cp.stages) {
    first[static_cast<size_t>(st.slot)] = -1;
    last[static_cast<size_t>(st.slot)] = -1;
    live[static_cast<size_t>(st.slot)] = 1;
  }
  auto touch = [&](int slot, int pos) {
    if (slot < 0 || static_cast<size_t>(slot) >= n) return;
    size_t s = static_cast<size_t>(slot);
    if (pos < first[s]) first[s] = pos;
    if (pos > last[s]) last[s] = pos;
  };
  for (int i = 0; i < stream_end; ++i) {
    const Instr& ins = cp.instrs[static_cast<size_t>(i)];
    switch (ins.kind) {
      case InstrKind::kCompute:
        for (int s : cp.computes[static_cast<size_t>(ins.aux)].fence_slots) {
          touch(s, i);
        }
        break;
      case InstrKind::kFusedCompute:
        for (int ci : cp.fused[static_cast<size_t>(ins.aux)]) {
          for (int s : cp.computes[static_cast<size_t>(ci)].fence_slots) {
            touch(s, i);
          }
        }
        break;
      case InstrKind::kSplitCopy:
      case InstrKind::kMergeCopy: {
        const auto& sc = cp.scatters[static_cast<size_t>(ins.aux)];
        touch(sc.whole_slot, i);
        for (int s : sc.part_slots) touch(s, i);
        break;
      }
      case InstrKind::kAllocBatch:
        for (int s : cp.batches[static_cast<size_t>(ins.aux)]) {
          touch(s, i);
          live[static_cast<size_t>(s)] = 1;
        }
        break;
      case InstrKind::kFreeBatch:
        for (int s : cp.batches[static_cast<size_t>(ins.aux)]) {
          touch(s, i);
          live[static_cast<size_t>(s)] = 0;
        }
        break;
      default:
        touch(ins.slot, i);
        if (ins.kind == InstrKind::kAlloc ||
            ins.kind == InstrKind::kSwapIn) {
          live[static_cast<size_t>(ins.slot)] = 1;
        } else if (ins.kind == InstrKind::kFree ||
                   ins.kind == InstrKind::kDrop ||
                   ins.kind == InstrKind::kSwapOut) {
          live[static_cast<size_t>(ins.slot)] = 0;
        }
        break;
    }
  }

  size_t shared = 0;
  for (const auto& s : cp.slots) shared += s.shared ? 1 : 0;
  std::printf("\n== artifact ==\n");
  std::printf(
      "instrs=%zu slots=%zu (%zu shared) slot_bytes=%zu KiB "
      "static_footprint=%zu KiB workspace_highwater=%zu KiB "
      "lookahead=%d batches=%zu\n",
      cp.instrs.size(), cp.slots.size(), shared, cp.SlotBytes() >> 10,
      cp.StaticFootprintBytes() >> 10, cp.workspace_highwater >> 10,
      cp.swap_in_lookahead, cp.batches.size());

  std::printf("\n== slot lifetimes ==\n");
  std::printf("%-5s %-28s %-16s %10s  %s\n", "slot", "buffer", "shape",
              "KiB", "lifetime");
  for (size_t s = 0; s < n; ++s) {
    std::string life;
    if (last[s] < -1) {
      life = "untouched";
    } else {
      life = "[" + std::to_string(first[s]) + ", " +
             (live[s] ? "end" : std::to_string(last[s])) + "]";
    }
    std::printf("%-5zu %-28s %-16s %10.1f  %s%s\n", s,
                SlotName(graph, cp, static_cast<int>(s)).c_str(),
                cp.slots[s].shape.ToString().c_str(),
                static_cast<double>(cp.slots[s].alloc_bytes) / 1024.0,
                life.c_str(), cp.slots[s].shared ? "  (shared)" : "");
  }

  std::printf("\n== instruction stream ==\n");
  for (const auto& st : cp.stages) {
    std::printf("stage  %s -> slot %d%s\n",
                st.tensor >= 0 && st.tensor < graph.num_tensors()
                    ? graph.tensor(st.tensor).name.c_str()
                    : "?",
                st.slot, st.is_part ? " (part)" : "");
  }
  for (int i = 0; i < stream_end; ++i) {
    const Instr& ins = cp.instrs[static_cast<size_t>(i)];
    std::printf("%5d  ", i);
    switch (ins.kind) {
      case InstrKind::kAlloc:
        std::printf("alloc     s%-4d %s\n", ins.slot,
                    SlotName(graph, cp, ins.slot).c_str());
        break;
      case InstrKind::kFree:
        std::printf("free      s%-4d %s\n", ins.slot,
                    SlotName(graph, cp, ins.slot).c_str());
        break;
      case InstrKind::kDrop:
        std::printf("drop      s%-4d %s\n", ins.slot,
                    SlotName(graph, cp, ins.slot).c_str());
        break;
      case InstrKind::kSwapOut:
        std::printf("swap-out  s%-4d %s\n", ins.slot,
                    SlotName(graph, cp, ins.slot).c_str());
        break;
      case InstrKind::kSwapIn:
        std::printf("swap-in   s%-4d %s\n", ins.slot,
                    SlotName(graph, cp, ins.slot).c_str());
        break;
      case InstrKind::kAllocBatch:
      case InstrKind::kFreeBatch: {
        const auto& b = cp.batches[static_cast<size_t>(ins.aux)];
        std::printf("%s x%zu  [",
                    ins.kind == InstrKind::kAllocBatch ? "alloc-batch"
                                                       : "free-batch ",
                    b.size());
        for (size_t k = 0; k < b.size(); ++k) {
          std::printf("%ss%d", k > 0 ? " " : "", b[k]);
        }
        std::printf("]\n");
        break;
      }
      case InstrKind::kSplitCopy:
      case InstrKind::kMergeCopy: {
        const auto& sc = cp.scatters[static_cast<size_t>(ins.aux)];
        std::printf("%s s%-4d %s x%zu parts\n",
                    ins.kind == InstrKind::kSplitCopy ? "split    "
                                                      : "merge    ",
                    sc.whole_slot,
                    SlotName(graph, cp, sc.whole_slot).c_str(),
                    sc.part_slots.size());
        break;
      }
      case InstrKind::kCompute: {
        const auto& c = cp.computes[static_cast<size_t>(ins.aux)];
        std::printf("compute   %s%s", c.node->name.c_str(),
                    c.whole ? "" : " (micro)");
        if (c.workspace_bytes > 0) {
          std::printf("  ws=%zu KiB", c.workspace_bytes >> 10);
        }
        std::printf("\n");
        break;
      }
      case InstrKind::kFusedCompute: {
        const auto& members = cp.fused[static_cast<size_t>(ins.aux)];
        std::printf("fused    ");
        size_t ws = 0;
        for (size_t k = 0; k < members.size(); ++k) {
          const auto& c = cp.computes[static_cast<size_t>(members[k])];
          std::printf("%s%s", k > 0 ? "+" : " ", c.node->name.c_str());
          ws = std::max(ws, c.workspace_bytes);
        }
        if (ws > 0) std::printf("  ws=%zu KiB", ws >> 10);
        std::printf("\n");
        break;
      }
    }
  }
}

int RunLint(const Args& args) {
  static const char* kCorruptKinds[] = {
      "swap-in-after-use", "overlap-offsets", "recompute-rng",
      "drop-fence",        "forget-fence",    "double-swap-in",
      "free-in-flight",    "dup-batch-slot",  "stale-fence"};
  if (!args.corrupt.empty() &&
      std::find_if(std::begin(kCorruptKinds), std::end(kCorruptKinds),
                   [&](const char* k) { return args.corrupt == k; }) ==
          std::end(kCorruptKinds)) {
    std::fprintf(stderr, "unknown corruption kind %s\n",
                 args.corrupt.c_str());
    return 2;
  }
  if (args.format != "text" && args.format != "json") {
    std::fprintf(stderr, "unknown format %s (text|json)\n",
                 args.format.c_str());
    return 2;
  }
  if (!args.dump_deps.empty() && args.dump_deps != "dot" &&
      args.dump_deps != "text") {
    std::fprintf(stderr, "unknown dependence dump %s (dot|text)\n",
                 args.dump_deps.c_str());
    return 2;
  }
  const bool json = args.format == "json";

  // ---- model ----
  Result<models::Model> model_or = models::BuildByName(
      args.model, args.batch, args.scale, /*with_backward=*/true);
  if (!model_or.ok()) {
    std::fprintf(stderr, "building %s failed: %s\n", args.model.c_str(),
                 model_or.status().ToString().c_str());
    return 2;
  }
  models::Model model = std::move(model_or).value();
  Graph& graph = model.graph;

  // For --corrupt=recompute-rng the model graph gets one extra
  // RNG-bearing (recompute-unsafe) op grafted onto the loss path so the
  // program contains a step the lint can flag.
  if (args.corrupt == "recompute-rng") {
    Result<std::vector<TensorId>> out = graph.AddOp(
        std::make_unique<UnseededDropoutOp>(), "rng_tap", {model.loss});
    if (!out.ok()) {
      std::fprintf(stderr, "grafting RNG op failed: %s\n",
                   out.status().ToString().c_str());
      return 2;
    }
  }

  Result<Schedule> schedule_or = BuildSchedule(graph);
  if (!schedule_or.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule_or.status().ToString().c_str());
    return 2;
  }
  Schedule schedule = std::move(schedule_or).value();
  planner::GraphProfile profile =
      planner::ProfileGraph(graph, sim::TitanRtx());

  // ---- budget ----
  size_t capacity;
  if (args.capacity_mb > 0) {
    capacity = args.capacity_mb * (size_t{1} << 20);
  } else {
    MemoryProfile baseline = ComputeMemoryProfile(graph, schedule);
    size_t floor = baseline.always_live_bytes +
                   graph.BytesOfKind(TensorKind::kParamGrad);
    capacity = floor + static_cast<size_t>(
                           static_cast<double>(baseline.peak_bytes - floor) *
                           args.fraction);
  }

  // ---- plan ----
  planner::Plan plan;
  if (!args.plan_file.empty()) {
    Result<planner::Plan> plan_or = planner::LoadPlan(graph, args.plan_file);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "loading plan %s failed: %s\n",
                   args.plan_file.c_str(),
                   plan_or.status().ToString().c_str());
      return 2;
    }
    plan = std::move(plan_or).value();
  } else {
    auto planner = planner::MakePlanner(args.planner);
    if (planner == nullptr) {
      std::fprintf(stderr, "unknown planner %s\n", args.planner.c_str());
      return 2;
    }
    Result<planner::Plan> plan_or =
        planner->BuildPlan(graph, schedule, profile, capacity);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan_or.status().ToString().c_str());
      return 2;
    }
    plan = std::move(plan_or).value();
  }

  // ---- program + lowering ----
  Result<rewrite::Program> program_or =
      rewrite::GenerateProgram(graph, schedule, plan, profile);
  if (!program_or.ok()) {
    std::fprintf(stderr, "program generation failed: %s\n",
                 program_or.status().ToString().c_str());
    return 2;
  }
  rewrite::Program program = std::move(program_or).value();

  if (args.corrupt == "swap-in-after-use") {
    if (!CorruptSwapInAfterUse(&program)) {
      std::fprintf(stderr,
                   "corrupt=swap-in-after-use: program has no swap-in with "
                   "a later consumer (try a swapping planner / tighter "
                   "budget)\n");
      return 2;
    }
  } else if (args.corrupt == "recompute-rng") {
    if (!CorruptRecomputeRng(graph, &program)) {
      std::fprintf(stderr, "corrupt=recompute-rng: no RNG op step found\n");
      return 2;
    }
  }

  // Trainer provisions the pool with 25% headroom over the planning
  // budget; feasibility checks and the pass pipeline both use it.
  const size_t provisioned = capacity + capacity / 4;

  runtime::CompileOptions compile_options;
  compile_options.swap_in_lookahead = args.lookahead;
  compile_options.passes = args.passes;
  if (args.dump_compiled) {
    // Mirror the executor's steady-state options so every pass engages
    // the way it does under Trainer (keep_freed_values off, real pool).
    compile_options.autotune_lookahead = args.lookahead == 0;
    compile_options.pool_capacity = provisioned;
    compile_options.freed_values_unobservable = true;
  }
  Result<runtime::CompiledProgram> compiled_or =
      runtime::CompiledProgram::Compile(graph, program, compile_options);
  if (!compiled_or.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 compiled_or.status().ToString().c_str());
    return 2;
  }
  runtime::CompiledProgram compiled = std::move(compiled_or).value();

  if (args.corrupt == "overlap-offsets") {
    if (!CorruptOverlapOffsets(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=overlap-offsets: compiled program has no "
                   "multi-part scatter (use a splitting planner)\n");
      return 2;
    }
  } else if (args.corrupt == "drop-fence") {
    if (!CorruptDropFence(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=drop-fence: no swap-in with an unmasked "
                   "consuming compute (try a tighter budget)\n");
      return 2;
    }
  } else if (args.corrupt == "forget-fence") {
    if (!CorruptForgetFence(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=forget-fence: every fenced slot is "
                   "transferred somewhere\n");
      return 2;
    }
  } else if (args.corrupt == "double-swap-in") {
    if (!CorruptDoubleSwapIn(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=double-swap-in: stream has no kSwapIn (try a "
                   "tighter budget)\n");
      return 2;
    }
  } else if (args.corrupt == "free-in-flight") {
    if (!CorruptFreeInFlight(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=free-in-flight: stream has no kSwapIn (try a "
                   "tighter budget)\n");
      return 2;
    }
  } else if (args.corrupt == "dup-batch-slot") {
    if (!CorruptDupBatchSlot(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=dup-batch-slot: no multi-member pool-op batch "
                   "(keep the batch pass enabled)\n");
      return 2;
    }
  } else if (args.corrupt == "stale-fence") {
    if (!CorruptStaleFence(&compiled)) {
      std::fprintf(stderr, "corrupt=stale-fence: no compute to taint\n");
      return 2;
    }
  }

  if (!args.dump_deps.empty()) {
    const analysis::DepGraph dep = analysis::DepGraph::Build(compiled);
    const std::string rendered = args.dump_deps == "dot"
                                     ? dep.ToDot(compiled, &graph)
                                     : dep.ToText(compiled, &graph);
    std::fputs(rendered.c_str(), json ? stderr : stdout);
  }

  // ---- verify ----
  analysis::VerifyOptions options;
  // The feasibility budget matches what Trainer provisions: the planning
  // budget plus 25% headroom for alignment / transient ordering.
  options.capacity_bytes = provisioned;
  std::vector<analysis::Diagnostic> diagnostics = analysis::VerifyAll(
      graph, &schedule, &plan, &program, &compiled, options);

  const int errors = analysis::CountErrors(diagnostics);
  const size_t warnings =
      diagnostics.size() - static_cast<size_t>(errors);

  if (json) {
    // One JSON object, nothing else on stdout: machine consumers (the
    // lint-matrix ctest wiring, CI) parse this and key off the exit code.
    std::string out = "{\"model\":\"" + EscapeJson(args.model) +
                      "\",\"batch\":" + std::to_string(args.batch) +
                      ",\"planner\":\"" +
                      EscapeJson(args.plan_file.empty() ? args.planner
                                                        : args.plan_file) +
                      "\",\"budget_bytes\":" + std::to_string(capacity) +
                      ",\"steps\":" + std::to_string(program.steps.size()) +
                      ",\"instrs\":" +
                      std::to_string(compiled.instrs.size()) +
                      ",\"slots\":" + std::to_string(compiled.slots.size()) +
                      ",\"errors\":" + std::to_string(errors) +
                      ",\"warnings\":" + std::to_string(warnings) +
                      ",\"diagnostics\":" +
                      analysis::RenderAllJson(diagnostics, &graph) + "}\n";
    std::fputs(out.c_str(), stdout);
    return analysis::HasErrors(diagnostics) ? 1 : 0;
  }

  std::printf("model=%s batch=%d planner=%s budget=%zu bytes\n",
              args.model.c_str(), args.batch,
              args.plan_file.empty() ? args.planner.c_str()
                                     : args.plan_file.c_str(),
              capacity);
  std::printf("steps=%zu instrs=%zu slots=%zu replay_peak=%zu bytes\n",
              program.steps.size(), compiled.instrs.size(),
              compiled.slots.size(),
              analysis::ReplayPeakBytes(graph, program));
  if (args.dump_plan) DumpPlan(graph, plan);
  if (args.dump_compiled) DumpCompiled(graph, compiled);
  if (diagnostics.empty()) {
    std::printf("clean: no findings\n");
    return 0;
  }
  std::fputs(analysis::RenderAll(diagnostics, &graph).c_str(), stdout);
  std::printf("%d error(s), %zu warning(s)\n", errors, warnings);
  return analysis::HasErrors(diagnostics) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.list_codes) {
    ListCodes();
    return 0;
  }
  return RunLint(args);
}
