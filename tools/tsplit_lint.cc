// tsplit_lint: static verification of TSPLIT planning artifacts without
// executing them. Builds a model, schedules it, obtains a plan (from a
// planner or a plan file), generates the augmented program, lowers it, and
// runs every analysis/verifier.h lint over the chain. Findings print as
// "severity[CODE] message (location)" lines.
//
// Usage:
//   tsplit_lint [--model NAME] [--batch N] [--scale F]
//               [--planner NAME | --plan FILE]
//               [--capacity-mb N | --fraction F] [--lookahead N]
//               [--corrupt KIND] [--list-codes]
//
//   --model NAME      model zoo name (default MLP; see models::BuildByName)
//   --batch N         batch size (default 8)
//   --scale F         parameter-scale knob (default 1.0)
//   --planner NAME    planner to build the plan with (default TSPLIT)
//   --plan FILE       load the plan from FILE instead of planning
//   --capacity-mb N   device budget in MiB for planning + feasibility
//   --fraction F      derive the budget: floor + F * (peak - floor)
//                     (default 0.6 when --capacity-mb is absent)
//   --lookahead N     compile-time swap-in prefetch depth (default 0)
//   --corrupt KIND    inject a deliberate defect first (self-test/demo):
//                       swap-in-after-use  move a kSwapIn past its consumer
//                       overlap-offsets    overlap compiled scatter extents
//                       recompute-rng      mark an RNG op's compute step
//                                          as recompute
//   --list-codes      print the diagnostic registry and exit
//
// Exit status: 0 = clean (warnings allowed), 1 = error-severity
// diagnostics, 2 = usage error or pipeline failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/verifier.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "ops/dropout.h"
#include "planner/plan_io.h"
#include "planner/planner.h"
#include "planner/profile.h"
#include "rewrite/program.h"
#include "runtime/compiled_program.h"

namespace {

using namespace tsplit;  // NOLINT(google-build-using-namespace)

struct Args {
  std::string model = "MLP";
  int batch = 8;
  double scale = 1.0;
  std::string planner = "TSPLIT";
  std::string plan_file;
  size_t capacity_mb = 0;
  double fraction = 0.6;
  int lookahead = 0;
  std::string corrupt;
  bool list_codes = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tsplit_lint [--model NAME] [--batch N] [--scale F]\n"
      "                   [--planner NAME | --plan FILE]\n"
      "                   [--capacity-mb N | --fraction F] [--lookahead N]\n"
      "                   [--corrupt swap-in-after-use|overlap-offsets|"
      "recompute-rng]\n"
      "                   [--list-codes]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--list-codes") {
      args->list_codes = true;
    } else if (flag == "--model") {
      const char* v = value();
      if (v == nullptr) return false;
      args->model = v;
    } else if (flag == "--batch") {
      const char* v = value();
      if (v == nullptr) return false;
      args->batch = std::atoi(v);
    } else if (flag == "--scale") {
      const char* v = value();
      if (v == nullptr) return false;
      args->scale = std::atof(v);
    } else if (flag == "--planner") {
      const char* v = value();
      if (v == nullptr) return false;
      args->planner = v;
    } else if (flag == "--plan") {
      const char* v = value();
      if (v == nullptr) return false;
      args->plan_file = v;
    } else if (flag == "--capacity-mb") {
      const char* v = value();
      if (v == nullptr) return false;
      args->capacity_mb = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--fraction") {
      const char* v = value();
      if (v == nullptr) return false;
      args->fraction = std::atof(v);
    } else if (flag == "--lookahead") {
      const char* v = value();
      if (v == nullptr) return false;
      args->lookahead = std::atoi(v);
    } else if (flag == "--corrupt") {
      const char* v = value();
      if (v == nullptr) return false;
      args->corrupt = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void ListCodes() {
  for (const analysis::DiagnosticInfo& info :
       analysis::DiagnosticRegistry()) {
    std::printf("%s  %-7s  %s\n", info.code,
                analysis::SeverityToString(info.severity), info.summary);
  }
}

// A dropout whose mask is NOT derivable from a stored seed: the one op
// family whose recomputation is semantically unsafe. Used to demonstrate
// TSV006 on an otherwise valid program.
class UnseededDropoutOp : public ops::DropoutOp {
 public:
  UnseededDropoutOp() : ops::DropoutOp(0.1f, 42) {}
  std::string type_name() const override { return "UnseededDropout"; }
  bool recompute_safe() const override { return false; }
};

// Moves the first kSwapIn step to just after the first later compute that
// reads its buffer — the swap-in now lands too late (TSV004).
bool CorruptSwapInAfterUse(rewrite::Program* program) {
  for (size_t i = 0; i < program->steps.size(); ++i) {
    if (program->steps[i].kind != rewrite::StepKind::kSwapIn) continue;
    const rewrite::BufferKey key = program->steps[i].buffer;
    for (size_t j = i + 1; j < program->steps.size(); ++j) {
      const rewrite::Step& step = program->steps[j];
      if (step.kind != rewrite::StepKind::kCompute) continue;
      bool reads = false;
      for (const auto& group : step.inputs) {
        for (const auto& k : group) reads = reads || k == key;
      }
      if (!reads) continue;
      rewrite::Step moved = program->steps[i];
      program->steps.erase(program->steps.begin() +
                           static_cast<ptrdiff_t>(i));
      program->steps.insert(program->steps.begin() +
                                static_cast<ptrdiff_t>(j),  // j shifted left
                            std::move(moved));
      return true;
    }
  }
  return false;
}

// Duplicates a compiled scatter offset so two micro parts overlap
// (TSV023).
bool CorruptOverlapOffsets(runtime::CompiledProgram* compiled) {
  for (auto& scatter : compiled->scatters) {
    if (scatter.offsets.size() >= 2) {
      scatter.offsets[1] = scatter.offsets[0];
      return true;
    }
  }
  for (auto& merge : compiled->merges) {
    if (merge.offsets.size() >= 2) {
      merge.offsets[1] = merge.offsets[0];
      return true;
    }
  }
  return false;
}

// Marks the RNG-bearing op's compute step as a recompute (TSV006).
bool CorruptRecomputeRng(const Graph& graph, rewrite::Program* program) {
  for (rewrite::Step& step : program->steps) {
    if (step.kind != rewrite::StepKind::kCompute) continue;
    if (step.op < 0 || step.op >= graph.num_ops()) continue;
    if (!graph.node(step.op).op->recompute_safe()) {
      step.is_recompute = true;
      return true;
    }
  }
  return false;
}

int RunLint(const Args& args) {
  // ---- model ----
  Result<models::Model> model_or = models::BuildByName(
      args.model, args.batch, args.scale, /*with_backward=*/true);
  if (!model_or.ok()) {
    std::fprintf(stderr, "building %s failed: %s\n", args.model.c_str(),
                 model_or.status().ToString().c_str());
    return 2;
  }
  models::Model model = std::move(model_or).value();
  Graph& graph = model.graph;

  // For --corrupt=recompute-rng the model graph gets one extra
  // RNG-bearing (recompute-unsafe) op grafted onto the loss path so the
  // program contains a step the lint can flag.
  if (args.corrupt == "recompute-rng") {
    Result<std::vector<TensorId>> out = graph.AddOp(
        std::make_unique<UnseededDropoutOp>(), "rng_tap", {model.loss});
    if (!out.ok()) {
      std::fprintf(stderr, "grafting RNG op failed: %s\n",
                   out.status().ToString().c_str());
      return 2;
    }
  }

  Result<Schedule> schedule_or = BuildSchedule(graph);
  if (!schedule_or.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule_or.status().ToString().c_str());
    return 2;
  }
  Schedule schedule = std::move(schedule_or).value();
  planner::GraphProfile profile =
      planner::ProfileGraph(graph, sim::TitanRtx());

  // ---- budget ----
  size_t capacity;
  if (args.capacity_mb > 0) {
    capacity = args.capacity_mb * (size_t{1} << 20);
  } else {
    MemoryProfile baseline = ComputeMemoryProfile(graph, schedule);
    size_t floor = baseline.always_live_bytes +
                   graph.BytesOfKind(TensorKind::kParamGrad);
    capacity = floor + static_cast<size_t>(
                           static_cast<double>(baseline.peak_bytes - floor) *
                           args.fraction);
  }

  // ---- plan ----
  planner::Plan plan;
  if (!args.plan_file.empty()) {
    Result<planner::Plan> plan_or = planner::LoadPlan(graph, args.plan_file);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "loading plan %s failed: %s\n",
                   args.plan_file.c_str(),
                   plan_or.status().ToString().c_str());
      return 2;
    }
    plan = std::move(plan_or).value();
  } else {
    auto planner = planner::MakePlanner(args.planner);
    if (planner == nullptr) {
      std::fprintf(stderr, "unknown planner %s\n", args.planner.c_str());
      return 2;
    }
    Result<planner::Plan> plan_or =
        planner->BuildPlan(graph, schedule, profile, capacity);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan_or.status().ToString().c_str());
      return 2;
    }
    plan = std::move(plan_or).value();
  }

  // ---- program + lowering ----
  Result<rewrite::Program> program_or =
      rewrite::GenerateProgram(graph, schedule, plan, profile);
  if (!program_or.ok()) {
    std::fprintf(stderr, "program generation failed: %s\n",
                 program_or.status().ToString().c_str());
    return 2;
  }
  rewrite::Program program = std::move(program_or).value();

  if (args.corrupt == "swap-in-after-use") {
    if (!CorruptSwapInAfterUse(&program)) {
      std::fprintf(stderr,
                   "corrupt=swap-in-after-use: program has no swap-in with "
                   "a later consumer (try a swapping planner / tighter "
                   "budget)\n");
      return 2;
    }
  } else if (args.corrupt == "recompute-rng") {
    if (!CorruptRecomputeRng(graph, &program)) {
      std::fprintf(stderr, "corrupt=recompute-rng: no RNG op step found\n");
      return 2;
    }
  }

  runtime::CompileOptions compile_options;
  compile_options.swap_in_lookahead = args.lookahead;
  Result<runtime::CompiledProgram> compiled_or =
      runtime::CompiledProgram::Compile(graph, program, compile_options);
  if (!compiled_or.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 compiled_or.status().ToString().c_str());
    return 2;
  }
  runtime::CompiledProgram compiled = std::move(compiled_or).value();

  if (args.corrupt == "overlap-offsets") {
    if (!CorruptOverlapOffsets(&compiled)) {
      std::fprintf(stderr,
                   "corrupt=overlap-offsets: compiled program has no "
                   "multi-part scatter (use a splitting planner)\n");
      return 2;
    }
  } else if (!args.corrupt.empty() &&
             args.corrupt != "swap-in-after-use" &&
             args.corrupt != "recompute-rng") {
    std::fprintf(stderr, "unknown corruption kind %s\n",
                 args.corrupt.c_str());
    return 2;
  }

  // ---- verify ----
  analysis::VerifyOptions options;
  // The feasibility budget matches what Trainer provisions: the planning
  // budget plus 25% headroom for alignment / transient ordering.
  options.capacity_bytes = capacity + capacity / 4;
  std::vector<analysis::Diagnostic> diagnostics = analysis::VerifyAll(
      graph, &schedule, &plan, &program, &compiled, options);

  std::printf("model=%s batch=%d planner=%s budget=%zu bytes\n",
              args.model.c_str(), args.batch,
              args.plan_file.empty() ? args.planner.c_str()
                                     : args.plan_file.c_str(),
              capacity);
  std::printf("steps=%zu instrs=%zu slots=%zu replay_peak=%zu bytes\n",
              program.steps.size(), compiled.instrs.size(),
              compiled.slots.size(),
              analysis::ReplayPeakBytes(graph, program));
  if (diagnostics.empty()) {
    std::printf("clean: no findings\n");
    return 0;
  }
  std::fputs(analysis::RenderAll(diagnostics, &graph).c_str(), stdout);
  std::printf("%d error(s), %zu warning(s)\n",
              analysis::CountErrors(diagnostics),
              diagnostics.size() -
                  static_cast<size_t>(analysis::CountErrors(diagnostics)));
  return analysis::HasErrors(diagnostics) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.list_codes) {
    ListCodes();
    return 0;
  }
  return RunLint(args);
}
