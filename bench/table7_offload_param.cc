// Paper Table VII: maximum parameter scale (batch 16) vs ZeRO-Offload and
// FairScale-Offload with Adam optimizer state. Parameter-heavy scaling is
// where optimizer-state offloading shines — yet TSPLIT's joint plan still
// leads by also managing activations.

#include <cstdio>

#include "bench/bench_util.h"
#include "models/model.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::vector<std::string> models = models::PaperModelNames();
  if (argc > 1) models = {argv[1]};
  const std::vector<std::string> planners = {"ZeRO-Offload",
                                             "FairScale-Offload", "TSPLIT"};

  bench::PrintHeader(
      "Table VII: max parameter scale (batch 16) vs offloading systems, "
      "TITAN RTX",
      "paper shape: TSPLIT largest across models");

  std::printf("%-14s", "Model");
  for (const auto& planner : planners) std::printf("%20s", planner.c_str());
  std::printf("\n");
  for (const auto& model : models) {
    std::printf("%-14s", model.c_str());
    std::fflush(stdout);
    for (const auto& planner : planners) {
      runtime::SessionOptions options;
      options.planner_name = planner;
      options.with_adam_states = true;
      auto max_scale = runtime::MaxParamScale(model, options);
      if (max_scale.ok()) {
        std::printf("%19dx", *max_scale);
      } else {
        std::printf("%20s", "err");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
