// Paper Fig 15: throughput vs the offloading systems on PyTorch. ZeRO's
// gradient/optimizer traffic and FairScale's parameter + activation
// shuttling cost bandwidth that TSPLIT's demand-driven plan avoids while
// memory suffices.

#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/session.h"

using namespace tsplit;

int main() {
  struct Workload {
    const char* model;
    std::vector<int> batches;
  };
  std::vector<Workload> workloads = {
      {"VGG-16", {64, 128, 256}},
      {"ResNet-50", {64, 128, 256}},
      {"Inception-V4", {64, 128, 256}},
      {"Transformer", {64, 128, 256}},
  };
  const std::vector<std::string> planners = {"ZeRO-Offload",
                                             "FairScale-Offload", "TSPLIT"};

  bench::PrintHeader(
      "Fig 15: throughput (samples/s) vs offloading systems (Adam states "
      "on-footprint), TITAN RTX",
      "paper shape: TSPLIT fastest; FairScale pays for parameter+activation "
      "shuttling");

  for (const Workload& workload : workloads) {
    std::printf("\n[%s]\n%-20s", workload.model, "batch");
    for (int batch : workload.batches) std::printf("%10d", batch);
    std::printf("\n");
    for (const auto& planner : planners) {
      std::printf("%-20s", planner.c_str());
      std::fflush(stdout);
      for (int batch : workload.batches) {
        runtime::SessionOptions options;
        options.planner_name = planner;
        options.with_adam_states = true;
        auto result =
            runtime::SimulateModel(workload.model, batch, 1.0, options);
        if (result.ok()) {
          std::printf("%10.1f", result->stats.throughput(batch));
        } else {
          std::printf("%10s", "-");
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
