// Paper Fig 13: the same throughput comparison on a GTX 1080Ti (11 GB,
// ~70% of the RTX's FP32 throughput). Slower compute widens the window for
// hiding transfers, so swap-based policies lose less than on the RTX.

#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/session.h"

using namespace tsplit;

int main() {
  struct Workload {
    const char* model;
    std::vector<int> batches;
  };
  std::vector<Workload> workloads = {
      {"VGG-16", {32, 64, 128, 192, 256}},
      {"ResNet-50", {32, 64, 128, 256, 512}},
  };

  bench::PrintHeader(
      "Fig 13: throughput (samples/s) vs batch size, GTX 1080Ti (11 GB)",
      "paper shape: same ordering as Fig 12; relative swap overheads "
      "shrink on the slower GPU");

  for (const Workload& workload : workloads) {
    std::printf("\n[%s]\n%-14s", workload.model, "batch");
    for (int batch : workload.batches) std::printf("%10d", batch);
    std::printf("\n");
    for (const auto& planner : bench::PaperPlannerColumns()) {
      std::printf("%-14s", planner.c_str());
      std::fflush(stdout);
      for (int batch : workload.batches) {
        runtime::SessionOptions options;
        options.planner_name = planner;
        options.device = sim::Gtx1080Ti();
        auto result =
            runtime::SimulateModel(workload.model, batch, 1.0, options);
        if (result.ok()) {
          std::printf("%10.1f", result->stats.throughput(batch));
        } else {
          std::printf("%10s", "-");
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
