// Planner scaling bench: BuildPlan wall time under the reference engine
// (flat M_i vector, full per-round rebuild — the original Algorithm-2 data
// path) vs the incremental engine (segment-tree timeline, dirty-set
// resync, cached PCIe/transient evaluation), across models and memory
// budgets. Verifies both engines emit identical plans, prints a table, and
// writes machine-readable BENCH_planner.json.
//
//   $ ./planner_scaling_benchmark [--smoke] [--out path.json]
//
// --smoke runs the two smallest configs only (ctest wiring); --out
// defaults to BENCH_planner.json in the working directory
// (bench/run_benchmarks.sh points it at the repo root).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/memory_sim.h"
#include "planner/tsplit_planner.h"

using namespace tsplit;

namespace {

struct BenchCase {
  std::string label;
  models::Model model;
  bool is_gpt = false;
};

struct BenchResult {
  std::string label;
  double budget_fraction = 0;
  size_t budget_bytes = 0;
  int steps = 0;
  int tensors = 0;
  bool planned = false;
  bool plans_equal = false;
  double reference_seconds = 0;
  double incremental_seconds = 0;
  bool is_gpt = false;
  planner::PlannerStats stats;  // from the incremental run

  double speedup() const {
    return incremental_seconds > 0 ? reference_seconds / incremental_seconds
                                   : 0;
  }
};

models::Model MustBuild(Result<models::Model> model) {
  TSPLIT_CHECK_OK(model.status());
  return std::move(*model);
}

models::Model Gpt(int layers, int batch, int seq, int hidden, int heads) {
  models::GptConfig config;
  config.num_layers = layers;
  config.batch = batch;
  config.seq_len = seq;
  config.hidden = hidden;
  config.num_heads = heads;
  config.vocab = 8000;
  return MustBuild(models::BuildGpt(config));
}

std::vector<BenchCase> MakeCases(bool smoke) {
  std::vector<BenchCase> cases;
  {
    models::CnnConfig config;
    config.batch = smoke ? 8 : 32;
    config.image_size = 32;
    config.num_classes = 10;
    config.channel_scale = 16.0 / 64.0;
    cases.push_back(
        {"VGG-16", MustBuild(models::BuildVgg(16, config)), false});
  }
  cases.push_back({"GPT-small", Gpt(4, 4, 64, 256, 4), true});
  if (smoke) return cases;
  {
    models::CnnConfig config;
    config.batch = 16;
    config.image_size = 64;
    config.num_classes = 100;
    config.channel_scale = 16.0 / 64.0;
    cases.push_back(
        {"ResNet-50", MustBuild(models::BuildResNet(50, config)), false});
  }
  cases.push_back({"GPT-medium", Gpt(8, 8, 128, 512, 8), true});
  cases.push_back({"GPT-large", Gpt(24, 8, 256, 1024, 16), true});
  return cases;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

BenchResult RunCase(BenchCase& c, double fraction) {
  BenchResult r;
  r.label = c.label;
  r.budget_fraction = fraction;
  r.is_gpt = c.is_gpt;

  auto schedule = BuildSchedule(c.model.graph);
  TSPLIT_CHECK_OK(schedule.status());
  auto profile = planner::ProfileGraph(c.model.graph, sim::TitanRtx());
  auto baseline = ComputeMemoryProfile(c.model.graph, *schedule);
  size_t floor = baseline.always_live_bytes +
                 c.model.graph.BytesOfKind(TensorKind::kParamGrad);
  r.budget_bytes =
      floor +
      static_cast<size_t>((baseline.peak_bytes - floor) * fraction);
  r.steps = schedule->num_steps();
  r.tensors = c.model.graph.num_tensors();

  planner::TsplitOptions ref_options;
  ref_options.use_incremental_engine = false;
  planner::TsplitPlanner reference(ref_options);
  auto t0 = std::chrono::steady_clock::now();
  auto ref_plan = reference.BuildPlan(c.model.graph, *schedule, profile,
                                      r.budget_bytes);
  r.reference_seconds = SecondsSince(t0);

  planner::TsplitPlanner incremental;  // default: incremental engine
  t0 = std::chrono::steady_clock::now();
  auto inc_plan = incremental.BuildPlan(c.model.graph, *schedule, profile,
                                        r.budget_bytes);
  r.incremental_seconds = SecondsSince(t0);

  if (ref_plan.ok() != inc_plan.ok()) {
    std::fprintf(stderr,
                 "ENGINE DISAGREEMENT on %s @ %.2f: reference %s, "
                 "incremental %s\n",
                 c.label.c_str(), fraction,
                 ref_plan.status().ToString().c_str(),
                 inc_plan.status().ToString().c_str());
    return r;
  }
  if (!ref_plan.ok()) return r;  // budget infeasible for both: skip row
  r.planned = true;
  r.plans_equal = ref_plan->configs == inc_plan->configs;
  r.stats = inc_plan->stats;
  return r;
}

void AppendJson(std::string* out, const BenchResult& r) {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"model\": \"%s\", \"budget_fraction\": %.2f, "
      "\"budget_bytes\": %zu, \"steps\": %d, \"tensors\": %d, "
      "\"planned\": %s, \"plans_equal\": %s, "
      "\"reference_seconds\": %.6f, \"incremental_seconds\": %.6f, "
      "\"speedup\": %.2f, \"rounds\": %lld, \"candidates_scored\": %lld, "
      "\"assignments\": %lld, \"rebuilds_avoided\": %lld, "
      "\"tensors_resynced\": %lld, \"pcie_hit_rate\": %.4f, "
      "\"transient_hit_rate\": %.4f}",
      r.label.c_str(), r.budget_fraction, r.budget_bytes, r.steps,
      r.tensors, r.planned ? "true" : "false",
      r.plans_equal ? "true" : "false", r.reference_seconds,
      r.incremental_seconds, r.speedup(),
      static_cast<long long>(r.stats.rounds),
      static_cast<long long>(r.stats.candidates_scored),
      static_cast<long long>(r.stats.assignments),
      static_cast<long long>(r.stats.rebuilds_avoided),
      static_cast<long long>(r.stats.tensors_resynced),
      r.stats.PcieHitRate(), r.stats.TransientHitRate());
  *out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "Planner scaling: incremental engine vs reference (identical plans)",
      "reference = flat M_i + full per-round rebuild; incremental = "
      "segment tree + dirty-set resync + cached PCIe/transients");
  std::printf("%-12s %6s %7s %8s %10s %10s %8s %6s\n", "model", "budget",
              "steps", "tensors", "ref (s)", "inc (s)", "speedup", "equal");

  std::vector<double> fractions =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.7, 0.5, 0.3};
  std::vector<BenchCase> cases = MakeCases(smoke);
  std::vector<BenchResult> results;
  bool all_equal = true;
  for (BenchCase& c : cases) {
    for (double fraction : fractions) {
      BenchResult r = RunCase(c, fraction);
      results.push_back(r);
      if (!r.planned) {
        std::printf("%-12s %5.0f%% %7d %8d %21s\n", r.label.c_str(),
                    fraction * 100, r.steps, r.tensors, "infeasible");
        continue;
      }
      all_equal = all_equal && r.plans_equal;
      std::printf("%-12s %5.0f%% %7d %8d %10.4f %10.4f %7.1fx %6s\n",
                  r.label.c_str(), fraction * 100, r.steps, r.tensors,
                  r.reference_seconds, r.incremental_seconds, r.speedup(),
                  r.plans_equal ? "yes" : "NO");
    }
  }

  // The acceptance metric: the largest GPT config at the tightest budget.
  const BenchResult* flagship = nullptr;
  for (const BenchResult& r : results) {
    if (!r.is_gpt || !r.planned) continue;
    if (flagship == nullptr || r.steps > flagship->steps ||
        (r.steps == flagship->steps &&
         r.budget_fraction < flagship->budget_fraction)) {
      flagship = &r;
    }
  }
  if (flagship != nullptr) {
    std::printf("\nflagship (largest GPT, tightest budget): %s @ %.0f%% -> "
                "%.1fx speedup\n",
                flagship->label.c_str(), flagship->budget_fraction * 100,
                flagship->speedup());
  }

  std::string json = "{\n  \"benchmark\": \"planner_scaling\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"all_plans_equal\": " +
          std::string(all_equal ? "true" : "false") + ",\n";
  if (flagship != nullptr) {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"flagship\": {\"model\": \"%s\", \"budget_fraction\": "
                  "%.2f, \"speedup\": %.2f},\n",
                  flagship->label.c_str(), flagship->budget_fraction,
                  flagship->speedup());
    json += buffer;
  }
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(&json, results[i]);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());

  return all_equal ? 0 : 1;
}
