// Paper Table IV: maximum SAMPLE scale (batch size) per model under each
// memory-management policy on a TITAN RTX (24 GB). The paper's headline:
// TSPLIT reaches the largest batch on every model; conv-centric baselines
// cannot help the Transformer at all ("x").

#include <cstdio>

#include "bench/bench_util.h"
#include "models/model.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  // Optionally restrict to one model: table4_sample_scale VGG-16
  std::vector<std::string> models = models::PaperModelNames();
  if (argc > 1) models = {argv[1]};

  bench::PrintHeader(
      "Table IV: max sample scale (batch size), TITAN RTX 24 GB",
      "paper shape: TSPLIT largest everywhere; 'x' = policy inapplicable");

  std::printf("%-14s", "Model");
  for (const auto& planner : bench::PaperPlannerColumns()) {
    std::printf("%14s", planner.c_str());
  }
  std::printf("\n");

  for (const auto& model : models) {
    std::printf("%-14s", model.c_str());
    std::fflush(stdout);
    for (const auto& planner : bench::PaperPlannerColumns()) {
      if (bench::PlannerInapplicable(model, planner)) {
        std::printf("%14s", "x");
        std::fflush(stdout);
        continue;
      }
      runtime::SessionOptions options;
      options.planner_name = planner;
      options.device = sim::TitanRtx();
      auto max_batch = runtime::MaxSampleScale(model, options);
      if (max_batch.ok()) {
        std::printf("%14d", *max_batch);
      } else {
        std::printf("%14s", "err");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
