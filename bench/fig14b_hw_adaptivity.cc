// Paper Fig 14b (breakdown): hardware-adaptive planning. The same model
// planned for two GPUs yields different strategy mixes: on the slower
// 1080Ti recomputation is relatively more expensive, so TSPLIT shifts
// bytes from recompute toward swap.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/planner.h"
#include "runtime/session.h"

using namespace tsplit;

int main() {
  bench::PrintHeader(
      "Fig 14b: TSPLIT strategy mix (GB assigned) per device, VGG-16",
      "paper shape: the 1080Ti plan swaps more and recomputes less than "
      "the RTX plan");

  std::printf("%-14s %8s %12s %14s %12s %10s\n", "Device", "batch",
              "swapped GB", "recomputed GB", "swap share", "#splits");
  for (const sim::DeviceProfile& device :
       {sim::TitanRtx(), sim::Gtx1080Ti()}) {
    // Stress each device equally: plan at ~2x its capacity.
    int batch = device.memory_bytes > (size_t{16} << 30) ? 420 : 200;
    auto model = models::BuildVgg(16, {batch});
    if (!model.ok()) return 1;
    auto schedule = BuildSchedule(model->graph);
    auto profile = planner::ProfileGraph(model->graph, device);
    auto planner = planner::MakePlanner("TSPLIT");
    auto plan = planner->BuildPlan(model->graph, *schedule, profile,
                                   device.memory_bytes * 93 / 100);
    if (!plan.ok()) {
      std::printf("%-14s planning failed: %s\n", device.name.c_str(),
                  plan.status().ToString().c_str());
      continue;
    }
    double swapped = static_cast<double>(
        plan->BytesWithOpt(model->graph, MemOpt::kSwap));
    double recomputed = static_cast<double>(
        plan->BytesWithOpt(model->graph, MemOpt::kRecompute));
    std::printf("%-14s %8d %12.2f %14.2f %11.1f%% %10d\n",
                device.name.c_str(), batch, swapped / 1e9, recomputed / 1e9,
                100.0 * swapped / (swapped + recomputed),
                plan->CountSplit());
  }
  return 0;
}
