// Paper Fig 5: operator execution time as a function of the partition
// number. Different operators degrade differently — large convolutions
// split almost for free while small / memory-bound kernels pay launch and
// under-utilization overheads, which is exactly what the split cost model
// (Eq. 6) has to weigh.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/graph.h"
#include "ops/batchnorm.h"
#include "ops/conv2d.h"
#include "ops/matmul.h"
#include "ops/pool.h"
#include "planner/profile.h"

using namespace tsplit;

namespace {

// Builds a single-op graph and reports SplitOpSeconds across partitions
// along `axis` (0 = sample dimension, 1 = channel/parameter dimension).
void Sweep(const std::string& label, Graph* graph, OpId op, int axis = 0) {
  planner::GraphProfile profile =
      planner::ProfileGraph(*graph, sim::TitanRtx());
  double base_ms = profile.ops[static_cast<size_t>(op)].seconds * 1e3;
  std::printf("%-26s %9.3f", label.c_str(), base_ms);
  for (int p : {2, 4, 8, 16, 32}) {
    double ms =
        planner::SplitOpSeconds(*graph, sim::TitanRtx(), op, axis, p) * 1e3;
    std::printf("%9.3f", ms);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 5: kernel time (ms) vs partition number (sample-axis split), "
      "TITAN RTX",
      "paper shape: compute-heavy ops split nearly for free; small ops "
      "degrade steeply");
  std::printf("%-26s %9s %9s %9s %9s %9s %9s\n", "Operator", "p=1", "p=2",
              "p=4", "p=8", "p=16", "p=32");

  {
    Graph g;
    TensorId x = g.AddTensor("x", Shape{64, 64, 56, 56}, TensorKind::kInput);
    TensorId w = g.AddTensor("w", Shape{128, 64, 3, 3},
                             TensorKind::kParameter);
    auto y = g.AddOp(std::make_unique<ops::Conv2dOp>(ops::ConvConfig{1, 1}),
                     "conv", {x, w});
    Sweep("Conv2d 3x3 (large)", &g, 0);
    (void)y;
  }
  {
    Graph g;
    TensorId x = g.AddTensor("x", Shape{64, 512, 7, 7}, TensorKind::kInput);
    TensorId w = g.AddTensor("w", Shape{512, 512, 3, 3},
                             TensorKind::kParameter);
    auto y = g.AddOp(std::make_unique<ops::Conv2dOp>(ops::ConvConfig{1, 1}),
                     "conv", {x, w});
    Sweep("Conv2d 3x3 (deep)", &g, 0);
    (void)y;
  }
  {
    Graph g;
    TensorId a = g.AddTensor("a", Shape{4096, 4096}, TensorKind::kInput);
    TensorId b = g.AddTensor("b", Shape{4096, 4096}, TensorKind::kParameter);
    auto y = g.AddOp(std::make_unique<ops::MatMulOp>(), "matmul", {a, b});
    Sweep("MatMul 4096^3", &g, 0);
    (void)y;
  }
  {
    Graph g;
    TensorId x = g.AddTensor("x", Shape{64, 64, 112, 112},
                             TensorKind::kInput);
    auto y = g.AddOp(std::make_unique<ops::Pool2dOp>(ops::PoolConfig{}),
                     "pool", {x});
    Sweep("MaxPool 2x2", &g, 0);
    (void)y;
  }
  {
    Graph g;
    TensorId x = g.AddTensor("x", Shape{64, 64, 56, 56}, TensorKind::kInput);
    TensorId gamma = g.AddTensor("g", Shape{64}, TensorKind::kParameter);
    TensorId beta = g.AddTensor("b", Shape{64}, TensorKind::kParameter);
    auto y = g.AddOp(std::make_unique<ops::BatchNorm2dOp>(), "bn",
                     {x, gamma, beta});
    Sweep("BatchNorm (channel split)", &g, 0, /*axis=*/1);
    (void)y;
  }
  {
    Graph g;
    TensorId a = g.AddTensor("a", Shape{256, 256}, TensorKind::kInput);
    TensorId b = g.AddTensor("b", Shape{256, 256}, TensorKind::kParameter);
    auto y = g.AddOp(std::make_unique<ops::MatMulOp>(), "matmul", {a, b});
    Sweep("MatMul 256^3 (small)", &g, 0);
    (void)y;
  }
  return 0;
}
