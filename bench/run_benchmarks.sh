#!/usr/bin/env bash
# Builds (if needed) and runs the planner scaling bench, writing
# machine-readable BENCH_planner.json at the repo root. Pass --smoke for
# the quick configuration the ctest smoke test uses.
#
#   $ bench/run_benchmarks.sh [--smoke]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j --target planner_scaling_benchmark

"$build_dir/bench/planner_scaling_benchmark" "$@" \
    --out "$repo_root/BENCH_planner.json"

echo "BENCH_planner.json written to $repo_root"
