#!/usr/bin/env bash
# Builds (if needed) and runs the machine-readable benches, writing
# BENCH_planner.json and BENCH_executor.json at the repo root. Pass
# --smoke for the quick configurations the ctest smoke tests use.
#
#   $ bench/run_benchmarks.sh [--smoke]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j --target planner_scaling_benchmark \
    executor_replay_benchmark

"$build_dir/bench/planner_scaling_benchmark" "$@" \
    --out "$repo_root/BENCH_planner.json"

"$build_dir/bench/executor_replay_benchmark" "$@" \
    --out "$repo_root/BENCH_executor.json"

echo "BENCH_planner.json and BENCH_executor.json written to $repo_root"
