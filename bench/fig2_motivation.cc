// Paper Fig 2 (motivation):
//  (a) memory-footprint timeline of VGG training under SuperNeurons vs
//      TSPLIT — the tensor-wise baseline leaves multiple high peaks that
//      bound trainability, which tensor splitting flattens;
//  (b) SuperNeurons' throughput overhead vs Base and its PCIe utilization
//      across the CNN models (paper: 25~45% overhead, ~45.6% PCIe).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/memory_sim.h"
#include "planner/planner.h"
#include "runtime/session.h"

using namespace tsplit;

namespace {

// Prints a coarse sparkline of the per-op memory requirement.
void PrintTimeline(const char* label, const std::vector<size_t>& memory) {
  size_t peak = *std::max_element(memory.begin(), memory.end());
  constexpr int kColumns = 64;
  std::printf("%-14s peak=%5.1fGB |", label,
              static_cast<double>(peak) / 1e9);
  const char* levels = " .:-=+*#%@";
  size_t n = memory.size();
  for (int c = 0; c < kColumns; ++c) {
    size_t from = n * static_cast<size_t>(c) / kColumns;
    size_t to = std::max(from + 1, n * static_cast<size_t>(c + 1) / kColumns);
    size_t window_max = 0;
    for (size_t i = from; i < to && i < n; ++i) {
      window_max = std::max(window_max, memory[i]);
    }
    int level = static_cast<int>(9.0 * window_max / peak);
    std::putchar(levels[std::clamp(level, 0, 9)]);
  }
  std::printf("|\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 2a: VGG-16 (batch 256) memory-requirement timeline",
      "paper shape: SuperNeurons leaves tall per-layer peaks; TSPLIT "
      "flattens them");

  const int kBatch = 256;
  auto model = models::BuildVgg(16, {kBatch});
  if (!model.ok()) return 1;
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  auto facts = planner::ComputeTensorFacts(model->graph, *schedule);

  // Plan against an over-subscribed budget (12 GB) so management has to
  // act: Base shows the unmanaged profile, SuperNeurons' fixed policy
  // still spikes above the budget, TSPLIT flattens below it.
  const size_t kBudget = size_t{12} << 30;
  for (const char* planner_name : {"Base", "SuperNeurons", "TSPLIT"}) {
    auto planner = planner::MakePlanner(planner_name);
    auto plan = planner->BuildPlan(model->graph, *schedule, profile, kBudget);
    if (!plan.ok()) {
      std::printf("%-14s planning failed: %s\n", planner_name,
                  plan.status().ToString().c_str());
      continue;
    }
    std::vector<size_t> memory =
        planner::PlannedMemory(model->graph, *schedule, facts, *plan);
    PrintTimeline(planner_name, memory);
  }
  std::printf("(budget line: 12.0 GB)\n");

  bench::PrintHeader(
      "Fig 2b: SuperNeurons overhead vs Base + PCIe utilization, batch 128",
      "paper shape: 25-45% slowdown across models, PCIe well below "
      "saturation");
  std::printf("%-14s %14s %14s %12s %10s\n", "Model", "Base (img/s)",
              "SuperN (img/s)", "overhead", "PCIe util");
  for (const char* name :
       {"VGG-16", "VGG-19", "ResNet-50", "ResNet-101", "Inception-V4"}) {
    runtime::SessionOptions base_options;
    base_options.planner_name = "Base";
    auto base = runtime::SimulateModel(name, 128, 1.0, base_options);
    runtime::SessionOptions sn_options;
    sn_options.planner_name = "SuperNeurons";
    auto sn = runtime::SimulateModel(name, 128, 1.0, sn_options);
    if (!base.ok() || !sn.ok()) {
      std::printf("%-14s %14s\n", name, "n/a (OOM at this batch)");
      continue;
    }
    double base_tp = base->stats.throughput(128);
    double sn_tp = sn->stats.throughput(128);
    std::printf("%-14s %14.1f %14.1f %11.1f%% %9.1f%%\n", name, base_tp,
                sn_tp, 100.0 * (1.0 - sn_tp / base_tp),
                100.0 * sn->stats.pcie_utilization);
  }
  return 0;
}
