// Paper Table II: distribution of tensor sizes in BERT-Large. Many tensors
// are huge (>500 MB at scale) — the reason whole-tensor memory management
// hits walls and motivates the tensor-splitting primitive (§III-A).

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/views.h"
#include "models/model.h"

using namespace tsplit;

int main() {
  // Paper setting: BERT-Large at a large fine-tuning batch.
  auto model = models::BuildBertLarge(/*batch=*/32, /*hidden=*/1024,
                                      /*seq_len=*/512);
  if (!model.ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  const double kMiB = 1024.0 * 1024.0;
  struct Bucket {
    const char* label;
    double lo_mb;
    double hi_mb;
    int count = 0;
  };
  std::vector<Bucket> buckets = {
      {"< 1 MB", 0, 1},          {"1 ~ 10 MB", 1, 10},
      {"10 ~ 50 MB", 10, 50},    {"50 ~ 100 MB", 50, 100},
      {"100 ~ 500 MB", 100, 500}, {"> 500 MB", 500, 1e18},
  };

  std::vector<TensorId> roots = ComputeViewRoots(model->graph);
  int total = 0;
  for (const TensorDesc& t : model->graph.tensors()) {
    if (roots[static_cast<size_t>(t.id)] != t.id) continue;  // view alias
    double mb = static_cast<double>(t.size_bytes()) / kMiB;
    for (Bucket& bucket : buckets) {
      if (mb >= bucket.lo_mb && mb < bucket.hi_mb) {
        ++bucket.count;
        break;
      }
    }
    ++total;
  }

  bench::PrintHeader(
      "Table II: tensor-size distribution, BERT-Large (batch 32, seq 512)",
      "paper shape: a heavy tail of very large tensors (>500 MB: 13.41%)");
  std::printf("%-16s %10s %12s\n", "Size", "Count", "Percentage");
  for (const Bucket& bucket : buckets) {
    std::printf("%-16s %10d %11.2f%%\n", bucket.label, bucket.count,
                100.0 * bucket.count / total);
  }
  std::printf("%-16s %10d\n", "total", total);
  return 0;
}
