#ifndef TSPLIT_BENCH_BENCH_UTIL_H_
#define TSPLIT_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction bench binaries: fixed-width
// table printing and the common model x planner sweep helpers. Each bench
// regenerates one table or figure from the TSPLIT paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/session.h"

namespace tsplit::bench {

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  PrintRule(78);
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  PrintRule(78);
}

// The planner columns of Tables IV/V, paper order.
inline std::vector<std::string> PaperPlannerColumns() {
  return {"Base",        "vDNN-conv",    "vDNN-all",
          "Checkpoints", "SuperNeurons", "TSPLIT"};
}

// "x" entries: conv-centric baselines have nothing to act on for
// Transformer (paper Tables IV/V footnote).
inline bool PlannerInapplicable(const std::string& model,
                                const std::string& planner) {
  return model == "Transformer" &&
         (planner == "vDNN-conv" || planner == "SuperNeurons");
}

}  // namespace tsplit::bench

#endif  // TSPLIT_BENCH_BENCH_UTIL_H_
