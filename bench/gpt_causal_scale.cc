// Extension bench (beyond the paper's tables): TSPLIT on a GPT-style
// causal decoder, where [B*heads, S, S] attention scores dominate memory
// quadratically in sequence length — the regime the paper's introduction
// motivates with GPT-scale models.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "runtime/session.h"

using namespace tsplit;

namespace {

// Largest trainable sequence length at fixed batch.
int MaxSeqLen(const std::string& planner, int batch) {
  auto trainable = [&](int seq) {
    models::GptConfig config;
    config.num_layers = 6;
    config.batch = batch;
    config.seq_len = seq;
    config.hidden = 512;
    config.num_heads = 8;
    config.vocab = 32000;
    auto model = models::BuildGpt(config);
    if (!model.ok()) return false;
    runtime::SessionOptions options;
    options.planner_name = planner;
    options.device = sim::TitanRtx();
    return runtime::SimulateIteration(&*model, options).ok();
  };
  int lo = 64, hi = 128;
  if (!trainable(lo)) return 0;
  while (hi <= 16384 && trainable(hi)) {
    lo = hi;
    hi *= 2;
  }
  if (hi > 16384) return lo;
  while (hi - lo > 64) {
    int mid = (lo + hi) / 2 / 64 * 64;
    (trainable(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: GPT-6L causal decoder, max sequence length at batch 16, "
      "TITAN RTX",
      "attention scores grow as S^2: splitting them is the only fine-"
      "grained lever");

  std::printf("%-14s %14s\n", "Planner", "max seq len");
  for (const char* planner :
       {"Base", "vDNN-all", "Checkpoints", "TSPLIT"}) {
    std::printf("%-14s", planner);
    std::fflush(stdout);
    std::printf("%14d\n", MaxSeqLen(planner, 16));
  }
  return 0;
}
