// Executor replay bench: steady-state steps/sec of the compiled execution
// path (flat instruction stream, slot-interned buffers, accounting-only
// workspaces, persistent scratch) vs the map-based reference executor,
// replaying one planned program per model family the way the Trainer does
// (one executor reused across iterations, keep_freed_values off, the loss
// retained for read-back). Verifies the two paths stay bitwise-identical on
// the retained loss and report the same device peak, prints a table, and
// writes machine-readable BENCH_executor.json.
//
//   $ ./executor_replay_benchmark [--smoke] [--out path.json]
//
// --smoke runs the smallest model at the tight budget only (ctest wiring);
// --out defaults to BENCH_executor.json in the working directory
// (bench/run_benchmarks.sh points it at the repo root).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/tsplit_planner.h"
#include "rewrite/program.h"
#include "runtime/functional_executor.h"
#include "runtime/interpreter.h"

using namespace tsplit;

namespace {

struct BenchCase {
  std::string label;
  models::Model model;
};

struct BenchResult {
  std::string label;
  double budget_fraction = 0;
  size_t budget_bytes = 0;
  int program_steps = 0;
  int iters = 0;
  bool planned = false;
  bool ran = false;
  bool values_match = false;
  bool peak_match = false;
  double reference_steps_per_sec = 0;
  double compiled_steps_per_sec = 0;

  double speedup() const {
    return reference_steps_per_sec > 0
               ? compiled_steps_per_sec / reference_steps_per_sec
               : 0;
  }
  bool match() const { return ran && values_match && peak_match; }
};

models::Model MustBuild(Result<models::Model> model) {
  TSPLIT_CHECK_OK(model.status());
  return std::move(*model);
}

// The five model families the compiled-exec parity tests cover, at the
// same scales: framework overhead (what the compiled path removes) is
// measured against real kernel work, not against a mock.
std::vector<BenchCase> MakeCases(bool smoke) {
  std::vector<BenchCase> cases;
  cases.push_back({"MLP", MustBuild(models::BuildMlp({}))});
  if (smoke) return cases;
  {
    models::CnnConfig config;
    config.batch = 8;
    config.image_size = 16;
    config.num_classes = 4;
    config.channel_scale = 8.0 / 64.0;
    cases.push_back({"VGG-16", MustBuild(models::BuildVgg(16, config))});
  }
  {
    models::CnnConfig config;
    config.batch = 2;
    config.image_size = 32;
    config.num_classes = 3;
    config.channel_scale = 4.0 / 64.0;
    cases.push_back({"ResNet-50", MustBuild(models::BuildResNet(50, config))});
  }
  {
    models::GptConfig config;
    config.num_layers = 2;
    config.batch = 2;
    config.seq_len = 16;
    config.hidden = 32;
    config.num_heads = 2;
    config.vocab = 64;
    cases.push_back({"GPT", MustBuild(models::BuildGpt(config))});
  }
  {
    models::TransformerConfig config;
    config.num_layers = 2;
    config.batch = 2;
    config.seq_len = 8;
    config.hidden = 16;
    config.num_heads = 2;
    config.ffn_mult = 2;
    config.vocab = 32;
    cases.push_back(
        {"Transformer", MustBuild(models::BuildTransformer(config))});
  }
  return cases;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One executor reused across iterations in the Trainer's steady-state
// configuration; returns iterations/sec over `iters` timed replays after
// one warmup (which also pays the one-time compilation on the compiled
// path — exactly the cost profile of a training run).
struct VariantRun {
  bool ok = false;
  double steps_per_sec = 0;
  size_t peak_device_bytes = 0;
  Tensor loss;
};

VariantRun RunVariant(const models::Model& model,
                      const rewrite::Program& program, size_t capacity,
                      bool compiled, int iters) {
  VariantRun out;
  runtime::FunctionalExecutor exec(&model.graph, capacity);
  exec.set_compiled(compiled);
  exec.set_keep_freed_values(false);
  exec.RetainValue(model.loss);
  auto bindings = runtime::MakeRandomBindings(model.graph, 17);
  for (auto& [id, value] : bindings) {
    TSPLIT_CHECK_OK(exec.Bind(id, std::move(value)));
  }
  if (!exec.Run(program).ok()) return out;  // warmup + compile
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!exec.Run(program).ok()) return out;
  }
  double seconds = SecondsSince(t0);
  auto loss = exec.ValueOf(model.loss);
  if (!loss.ok()) return out;
  out.ok = true;
  out.steps_per_sec = seconds > 0 ? iters / seconds : 0;
  out.peak_device_bytes = exec.peak_device_bytes();
  out.loss = std::move(*loss);
  return out;
}

BenchResult RunCase(const BenchCase& c, double fraction, bool smoke) {
  BenchResult r;
  r.label = c.label;
  r.budget_fraction = fraction;

  auto schedule = BuildSchedule(c.model.graph);
  TSPLIT_CHECK_OK(schedule.status());
  auto profile = planner::ProfileGraph(c.model.graph, sim::TitanRtx());
  auto baseline = ComputeMemoryProfile(c.model.graph, *schedule);
  size_t floor = baseline.always_live_bytes +
                 c.model.graph.BytesOfKind(TensorKind::kParamGrad);
  r.budget_bytes =
      floor + static_cast<size_t>((baseline.peak_bytes - floor) * fraction);

  planner::TsplitPlanner planner;
  auto plan = planner.BuildPlan(c.model.graph, *schedule, profile,
                                r.budget_bytes);
  if (!plan.ok()) return r;  // budget infeasible: skip row
  auto program = rewrite::GenerateProgram(c.model.graph, *schedule, *plan,
                                          profile);
  TSPLIT_CHECK_OK(program.status());
  r.planned = true;
  r.program_steps = static_cast<int>(program->steps.size());

  // Same headroom over the planning budget the Trainer leaves.
  size_t capacity = r.budget_bytes + r.budget_bytes / 4;

  // Size the timed loop off one untimed reference replay (~0.5s per
  // variant in the full sweep), same iteration count for both variants.
  int iters = 2;
  if (!smoke) {
    auto t0 = std::chrono::steady_clock::now();
    VariantRun probe =
        RunVariant(c.model, *program, capacity, /*compiled=*/false, 1);
    double per_iter = SecondsSince(t0) / 2;  // warmup + 1 timed
    if (!probe.ok) return r;
    iters = std::clamp(static_cast<int>(0.5 / std::max(per_iter, 1e-6)), 3,
                       200);
  }
  r.iters = iters;

  VariantRun ref =
      RunVariant(c.model, *program, capacity, /*compiled=*/false, iters);
  VariantRun comp =
      RunVariant(c.model, *program, capacity, /*compiled=*/true, iters);
  if (!ref.ok || !comp.ok) return r;
  r.ran = true;
  r.reference_steps_per_sec = ref.steps_per_sec;
  r.compiled_steps_per_sec = comp.steps_per_sec;
  r.peak_match = ref.peak_device_bytes == comp.peak_device_bytes;
  r.values_match =
      ref.loss.shape() == comp.loss.shape() &&
      std::memcmp(ref.loss.vec().data(), comp.loss.vec().data(),
                  ref.loss.vec().size() * sizeof(float)) == 0;
  return r;
}

void AppendJson(std::string* out, const BenchResult& r) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"model\": \"%s\", \"budget_fraction\": %.2f, "
      "\"budget_bytes\": %zu, \"program_steps\": %d, \"iters\": %d, "
      "\"planned\": %s, \"ran\": %s, \"values_match\": %s, "
      "\"peak_match\": %s, \"reference_steps_per_sec\": %.3f, "
      "\"compiled_steps_per_sec\": %.3f, \"speedup\": %.2f}",
      r.label.c_str(), r.budget_fraction, r.budget_bytes, r.program_steps,
      r.iters, r.planned ? "true" : "false", r.ran ? "true" : "false",
      r.values_match ? "true" : "false", r.peak_match ? "true" : "false",
      r.reference_steps_per_sec, r.compiled_steps_per_sec, r.speedup());
  *out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_executor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "Executor replay: compiled instruction stream vs map-based reference",
      "one executor reused across iterations (Trainer steady state); both "
      "paths must agree on the loss bitwise and on the device peak");
  std::printf("%-12s %6s %7s %6s %12s %12s %8s %6s\n", "model", "budget",
              "steps", "iters", "ref it/s", "comp it/s", "speedup",
              "match");

  std::vector<double> fractions =
      smoke ? std::vector<double>{0.3} : std::vector<double>{0.3, 0.6};
  std::vector<BenchCase> cases = MakeCases(smoke);
  std::vector<BenchResult> results;
  bool all_match = true;
  for (const BenchCase& c : cases) {
    for (double fraction : fractions) {
      BenchResult r = RunCase(c, fraction, smoke);
      results.push_back(r);
      if (!r.planned) {
        std::printf("%-12s %5.0f%% %28s\n", r.label.c_str(),
                    fraction * 100, "infeasible");
        continue;
      }
      if (!r.ran) {
        std::printf("%-12s %5.0f%% %7d %27s\n", r.label.c_str(),
                    fraction * 100, r.program_steps, "RUN FAILED");
        all_match = false;
        continue;
      }
      all_match = all_match && r.match();
      std::printf("%-12s %5.0f%% %7d %6d %12.2f %12.2f %7.2fx %6s\n",
                  r.label.c_str(), fraction * 100, r.program_steps,
                  r.iters, r.reference_steps_per_sec,
                  r.compiled_steps_per_sec, r.speedup(),
                  r.match() ? "yes" : "NO");
    }
  }

  // The acceptance metric: best speedup at the tight (30%) budget.
  const BenchResult* flagship = nullptr;
  for (const BenchResult& r : results) {
    if (!r.ran || r.budget_fraction > 0.31) continue;
    if (flagship == nullptr || r.speedup() > flagship->speedup()) {
      flagship = &r;
    }
  }
  if (flagship != nullptr) {
    std::printf("\nflagship (best at 30%% budget): %s -> %.2fx steps/sec\n",
                flagship->label.c_str(), flagship->speedup());
  }

  std::string json = "{\n  \"benchmark\": \"executor_replay\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"all_match\": " + std::string(all_match ? "true" : "false") +
          ",\n";
  if (flagship != nullptr) {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"flagship\": {\"model\": \"%s\", \"budget_fraction\": "
                  "%.2f, \"speedup\": %.2f},\n",
                  flagship->label.c_str(), flagship->budget_fraction,
                  flagship->speedup());
    json += buffer;
  }
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(&json, results[i]);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());
  return all_match ? 0 : 2;
}
