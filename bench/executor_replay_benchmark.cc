// Executor replay bench: steady-state steps/sec of the compiled execution
// path (flat instruction stream, slot-interned buffers, accounting-only
// workspaces, persistent scratch) vs the map-based reference executor,
// replaying one planned program per model family the way the Trainer does
// (one executor reused across iterations, keep_freed_values off, the loss
// retained for read-back). Verifies the two paths stay bitwise-identical on
// the retained loss and report the same device peak, prints a table, and
// writes machine-readable BENCH_executor.json.
//
//   $ ./executor_replay_benchmark [--smoke] [--out path.json]
//       [--model NAME] [--budget F] [--iters N] [--check recorded.json]
//
// --smoke runs the smallest model at the tight budget only (quick wiring);
// --out defaults to BENCH_executor.json in the working directory
// (bench/run_benchmarks.sh points it at the repo root).
// --model NAME  runs only the family whose label contains NAME
//               (case-insensitive), e.g. --model resnet;
// --budget F    runs only the budget fraction F (e.g. 0.30);
// --iters N     forces the timed iteration count instead of auto-sizing —
//               together these isolate one matrix row for profiling.
// --check FILE  regression gate (the bench_executor_smoke ctest wiring):
//               after measuring, asserts every ResNet-50 row's compiled
//               speedup is >= 1.0 and no row drops below 0.95x of its
//               speedup recorded in FILE (the committed
//               BENCH_executor.json). A row failing the gate is re-measured
//               once with a 3x longer timed loop before it counts as a
//               failure. Exit 3 when the gate fails.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/tsplit_planner.h"
#include "rewrite/program.h"
#include "runtime/functional_executor.h"
#include "runtime/interpreter.h"

using namespace tsplit;

namespace {

struct BenchCase {
  std::string label;
  models::Model model;
};

struct BenchResult {
  std::string label;
  double budget_fraction = 0;
  size_t budget_bytes = 0;
  int program_steps = 0;
  int iters = 0;
  bool fusion = false;         // planned with operator fusion enabled
  size_t fused_groups = 0;     // super-ops in the plan
  size_t ephemeral_bytes = 0;  // pool bytes fusion keeps ephemeral
  size_t peak_bytes = 0;       // measured device peak (both paths agree)
  bool planned = false;
  bool ran = false;
  bool values_match = false;
  bool peak_match = false;
  double reference_steps_per_sec = 0;
  double compiled_steps_per_sec = 0;

  double speedup() const {
    return reference_steps_per_sec > 0
               ? compiled_steps_per_sec / reference_steps_per_sec
               : 0;
  }
  bool match() const { return ran && values_match && peak_match; }
};

models::Model MustBuild(Result<models::Model> model) {
  TSPLIT_CHECK_OK(model.status());
  return std::move(*model);
}

// The five model families the compiled-exec parity tests cover, at the
// same scales: framework overhead (what the compiled path removes) is
// measured against real kernel work, not against a mock.
std::vector<BenchCase> MakeCases(bool smoke) {
  std::vector<BenchCase> cases;
  cases.push_back({"MLP", MustBuild(models::BuildMlp({}))});
  if (smoke) return cases;
  {
    models::CnnConfig config;
    config.batch = 8;
    config.image_size = 16;
    config.num_classes = 4;
    config.channel_scale = 8.0 / 64.0;
    cases.push_back({"VGG-16", MustBuild(models::BuildVgg(16, config))});
  }
  {
    models::CnnConfig config;
    config.batch = 2;
    config.image_size = 32;
    config.num_classes = 3;
    config.channel_scale = 4.0 / 64.0;
    cases.push_back({"ResNet-50", MustBuild(models::BuildResNet(50, config))});
  }
  {
    models::GptConfig config;
    config.num_layers = 2;
    config.batch = 2;
    config.seq_len = 16;
    config.hidden = 32;
    config.num_heads = 2;
    config.vocab = 64;
    cases.push_back({"GPT", MustBuild(models::BuildGpt(config))});
  }
  {
    models::TransformerConfig config;
    config.num_layers = 2;
    config.batch = 2;
    config.seq_len = 8;
    config.hidden = 16;
    config.num_heads = 2;
    config.ffn_mult = 2;
    config.vocab = 32;
    cases.push_back(
        {"Transformer", MustBuild(models::BuildTransformer(config))});
  }
  return cases;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One executor reused across iterations in the Trainer's steady-state
// configuration; returns iterations/sec over `iters` timed replays after
// one warmup (which also pays the one-time compilation on the compiled
// path — exactly the cost profile of a training run).
struct VariantRun {
  bool ok = false;
  double steps_per_sec = 0;
  size_t peak_device_bytes = 0;
  Tensor loss;
};

std::unique_ptr<runtime::FunctionalExecutor> MakeExecutor(
    const models::Model& model, size_t capacity, bool compiled) {
  auto exec =
      std::make_unique<runtime::FunctionalExecutor>(&model.graph, capacity);
  exec->set_compiled(compiled);
  exec->set_keep_freed_values(false);
  exec->RetainValue(model.loss);
  auto bindings = runtime::MakeRandomBindings(model.graph, 17);
  for (auto& [id, value] : bindings) {
    TSPLIT_CHECK_OK(exec->Bind(id, std::move(value)));
  }
  return exec;
}

VariantRun RunVariant(const models::Model& model,
                      const rewrite::Program& program, size_t capacity,
                      bool compiled, int iters) {
  VariantRun out;
  auto exec = MakeExecutor(model, capacity, compiled);
  if (!exec->Run(program).ok()) return out;  // warmup + compile
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!exec->Run(program).ok()) return out;
  }
  double seconds = SecondsSince(t0);
  auto loss = exec->ValueOf(model.loss);
  if (!loss.ok()) return out;
  out.ok = true;
  out.steps_per_sec = seconds > 0 ? iters / seconds : 0;
  out.peak_device_bytes = exec->peak_device_bytes();
  out.loss = std::move(*loss);
  return out;
}

// Times both variants in alternating rounds over one pair of warmed
// executors: machine drift (CPU frequency, cache pressure from neighbours)
// hits both paths roughly equally instead of landing wholesale on
// whichever variant happened to run second — on a shared 1-CPU box that
// drift is several times larger than the effect being measured.
struct PairRun {
  VariantRun ref;
  VariantRun comp;
};

PairRun RunPair(const models::Model& model, const rewrite::Program& program,
                size_t capacity, int iters) {
  PairRun out;
  auto ref = MakeExecutor(model, capacity, /*compiled=*/false);
  auto comp = MakeExecutor(model, capacity, /*compiled=*/true);
  // Warmup both (pays compilation on the compiled side).
  if (!ref->Run(program).ok() || !comp->Run(program).ok()) return out;

  // Each variant's rate is its best round: interference from the shared
  // machine is strictly additive (it only ever slows a round down), so the
  // fastest round is the most faithful estimate of either path's real
  // speed, and both paths get the same number of shots at a quiet slice.
  const int rounds = std::clamp(iters / 3, 2, 8);
  double ref_rate = 0;
  double comp_rate = 0;
  for (int round = 0; round < rounds; ++round) {
    int begin = iters * round / rounds;
    int end = iters * (round + 1) / rounds;
    if (end == begin) continue;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = begin; i < end; ++i) {
      if (!ref->Run(program).ok()) return out;
    }
    double seconds = SecondsSince(t0);
    if (seconds > 0) ref_rate = std::max(ref_rate, (end - begin) / seconds);
    t0 = std::chrono::steady_clock::now();
    for (int i = begin; i < end; ++i) {
      if (!comp->Run(program).ok()) return out;
    }
    seconds = SecondsSince(t0);
    if (seconds > 0) {
      comp_rate = std::max(comp_rate, (end - begin) / seconds);
    }
  }

  auto finish = [&](runtime::FunctionalExecutor& exec, double rate,
                    VariantRun* v) {
    auto loss = exec.ValueOf(model.loss);
    if (!loss.ok()) return false;
    v->ok = true;
    v->steps_per_sec = rate;
    v->peak_device_bytes = exec.peak_device_bytes();
    v->loss = std::move(*loss);
    return true;
  };
  if (!finish(*ref, ref_rate, &out.ref)) return out;
  if (!finish(*comp, comp_rate, &out.comp)) out.ref.ok = false;
  return out;
}

BenchResult RunCase(const BenchCase& c, double fraction, bool smoke,
                    int forced_iters, bool fusion = false) {
  BenchResult r;
  r.label = fusion ? c.label + "+fuse" : c.label;
  r.budget_fraction = fraction;
  r.fusion = fusion;

  auto schedule = BuildSchedule(c.model.graph);
  TSPLIT_CHECK_OK(schedule.status());
  auto profile = planner::ProfileGraph(c.model.graph, sim::TitanRtx());
  auto baseline = ComputeMemoryProfile(c.model.graph, *schedule);
  size_t floor = baseline.always_live_bytes +
                 c.model.graph.BytesOfKind(TensorKind::kParamGrad);
  r.budget_bytes =
      floor + static_cast<size_t>((baseline.peak_bytes - floor) * fraction);

  planner::TsplitOptions popts;
  popts.enable_fusion = fusion;
  planner::TsplitPlanner planner(popts);
  auto plan = planner.BuildPlan(c.model.graph, *schedule, profile,
                                r.budget_bytes);
  if (!plan.ok()) return r;  // budget infeasible: skip row
  auto program = rewrite::GenerateProgram(c.model.graph, *schedule, *plan,
                                          profile);
  TSPLIT_CHECK_OK(program.status());
  r.planned = true;
  r.program_steps = static_cast<int>(program->steps.size());
  r.fused_groups = plan->fusion_groups.size();
  r.ephemeral_bytes = plan->EphemeralBytes(c.model.graph);

  // Same headroom over the planning budget the Trainer leaves.
  size_t capacity = r.budget_bytes + r.budget_bytes / 4;

  // Size the timed loop off one untimed reference replay (~0.5s per
  // variant in the full sweep), same iteration count for both variants.
  int iters = 2;
  if (forced_iters > 0) {
    iters = forced_iters;
  } else if (!smoke) {
    auto t0 = std::chrono::steady_clock::now();
    VariantRun probe =
        RunVariant(c.model, *program, capacity, /*compiled=*/false, 1);
    double per_iter = SecondsSince(t0) / 2;  // warmup + 1 timed
    if (!probe.ok) return r;
    // Floor of 12 so even the slowest family gets >= 4 timed rounds for
    // the best-round estimate.
    iters = std::clamp(static_cast<int>(0.5 / std::max(per_iter, 1e-6)), 12,
                       200);
  }
  r.iters = iters;

  PairRun pair = RunPair(c.model, *program, capacity, iters);
  VariantRun& ref = pair.ref;
  VariantRun& comp = pair.comp;
  if (!ref.ok || !comp.ok) return r;
  r.ran = true;
  r.reference_steps_per_sec = ref.steps_per_sec;
  r.compiled_steps_per_sec = comp.steps_per_sec;
  r.peak_bytes = ref.peak_device_bytes;
  r.peak_match = ref.peak_device_bytes == comp.peak_device_bytes;
  r.values_match =
      ref.loss.shape() == comp.loss.shape() &&
      std::memcmp(ref.loss.vec().data(), comp.loss.vec().data(),
                  ref.loss.vec().size() * sizeof(float)) == 0;
  return r;
}

// One row of a previously recorded BENCH_executor.json.
struct RecordedRow {
  std::string model;
  double budget_fraction = 0;
  double speedup = 0;
};

// Minimal reader for the one-result-per-line JSON this bench writes; no
// general JSON parsing, just the three fields the gate compares.
std::vector<RecordedRow> LoadRecorded(const std::string& path) {
  std::vector<RecordedRow> rows;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return rows;
  char line[1024];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    const char* model = std::strstr(line, "\"model\": \"");
    const char* fraction = std::strstr(line, "\"budget_fraction\": ");
    const char* speedup = std::strstr(line, "\"speedup\": ");
    if (model == nullptr || fraction == nullptr || speedup == nullptr) {
      continue;
    }
    model += std::strlen("\"model\": \"");
    const char* quote = std::strchr(model, '"');
    if (quote == nullptr) continue;
    RecordedRow row;
    row.model.assign(model, quote);
    row.budget_fraction =
        std::atof(fraction + std::strlen("\"budget_fraction\": "));
    row.speedup = std::atof(speedup + std::strlen("\"speedup\": "));
    rows.push_back(std::move(row));
  }
  std::fclose(file);
  return rows;
}

const RecordedRow* FindRecorded(const std::vector<RecordedRow>& rows,
                                const std::string& model, double fraction) {
  for (const RecordedRow& row : rows) {
    if (row.model == model &&
        std::abs(row.budget_fraction - fraction) < 0.005) {
      return &row;
    }
  }
  return nullptr;
}

// The gate's floor for one row: ResNet-50 must not lose to the reference
// path at all (the regression this pipeline exists to fix); every family
// must hold 95% of its recorded speedup.
double GateFloor(const std::vector<RecordedRow>& recorded,
                 const BenchResult& r) {
  double floor = r.label == "ResNet-50" ? 1.0 : 0.0;
  const RecordedRow* row =
      FindRecorded(recorded, r.label, r.budget_fraction);
  if (row != nullptr && row->speedup > 0) {
    floor = std::max(floor, 0.95 * row->speedup);
  }
  return floor;
}

void AppendJson(std::string* out, const BenchResult& r) {
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"model\": \"%s\", \"budget_fraction\": %.2f, "
      "\"budget_bytes\": %zu, \"program_steps\": %d, \"iters\": %d, "
      "\"fusion\": %s, \"fused_groups\": %zu, \"ephemeral_bytes\": %zu, "
      "\"peak_bytes\": %zu, "
      "\"planned\": %s, \"ran\": %s, \"values_match\": %s, "
      "\"peak_match\": %s, \"reference_steps_per_sec\": %.3f, "
      "\"compiled_steps_per_sec\": %.3f, \"speedup\": %.2f}",
      r.label.c_str(), r.budget_fraction, r.budget_bytes, r.program_steps,
      r.iters, r.fusion ? "true" : "false", r.fused_groups,
      r.ephemeral_bytes, r.peak_bytes, r.planned ? "true" : "false",
      r.ran ? "true" : "false", r.values_match ? "true" : "false",
      r.peak_match ? "true" : "false", r.reference_steps_per_sec,
      r.compiled_steps_per_sec, r.speedup());
  *out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_executor.json";
  std::string model_filter;
  std::string check_path;
  double budget_filter = 0;
  int forced_iters = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_filter = argv[++i];
      std::transform(model_filter.begin(), model_filter.end(),
                     model_filter.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
    }
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_filter = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      forced_iters = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    }
  }

  std::vector<RecordedRow> recorded;
  if (!check_path.empty()) {
    recorded = LoadRecorded(check_path);
    if (recorded.empty()) {
      std::fprintf(stderr, "cannot read recorded results from %s\n",
                   check_path.c_str());
      return 2;
    }
  }

  bench::PrintHeader(
      "Executor replay: compiled instruction stream vs map-based reference",
      "one executor reused across iterations (Trainer steady state); both "
      "paths must agree on the loss bitwise and on the device peak");
  std::printf("%-12s %6s %7s %6s %12s %12s %8s %6s\n", "model", "budget",
              "steps", "iters", "ref it/s", "comp it/s", "speedup",
              "match");

  std::vector<double> fractions =
      smoke ? std::vector<double>{0.3} : std::vector<double>{0.3, 0.6};
  std::vector<BenchCase> cases = MakeCases(smoke);
  std::vector<BenchResult> results;
  bool all_match = true;
  for (const BenchCase& c : cases) {
    if (!model_filter.empty()) {
      std::string label = c.label;
      std::transform(label.begin(), label.end(), label.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (label.find(model_filter) == std::string::npos) continue;
    }
    // The elementwise-chain-heavy families also run with operator fusion
    // enabled, as distinct "+fuse" rows gated against their own recording.
    const bool fuse_family = c.label == "MLP" || c.label == "Transformer";
    for (double fraction : fractions) {
      if (budget_filter > 0 &&
          std::abs(fraction - budget_filter) > 0.005) {
        continue;
      }
      for (int variant = 0; variant < (fuse_family ? 2 : 1); ++variant) {
      const bool fusion = variant == 1;
      BenchResult r = RunCase(c, fraction, smoke, forced_iters, fusion);
      if (!check_path.empty() && r.ran &&
          (!r.match() || r.speedup() < GateFloor(recorded, r))) {
        // Noise mitigation: one re-measure with a 3x longer timed loop
        // before the row counts against the gate.
        BenchResult retry = RunCase(c, fraction, smoke, r.iters * 3, fusion);
        if (retry.ran) r = retry;
      }
      results.push_back(r);
      if (!r.planned) {
        std::printf("%-12s %5.0f%% %28s\n", r.label.c_str(),
                    fraction * 100, "infeasible");
        continue;
      }
      if (!r.ran) {
        std::printf("%-12s %5.0f%% %7d %27s\n", r.label.c_str(),
                    fraction * 100, r.program_steps, "RUN FAILED");
        all_match = false;
        continue;
      }
      all_match = all_match && r.match();
      std::printf("%-12s %5.0f%% %7d %6d %12.2f %12.2f %7.2fx %6s\n",
                  r.label.c_str(), fraction * 100, r.program_steps,
                  r.iters, r.reference_steps_per_sec,
                  r.compiled_steps_per_sec, r.speedup(),
                  r.match() ? "yes" : "NO");
      }
    }
  }

  // The acceptance metric: best speedup at the tight (30%) budget.
  const BenchResult* flagship = nullptr;
  for (const BenchResult& r : results) {
    if (!r.ran || r.budget_fraction > 0.31) continue;
    if (flagship == nullptr || r.speedup() > flagship->speedup()) {
      flagship = &r;
    }
  }
  if (flagship != nullptr) {
    std::printf("\nflagship (best at 30%% budget): %s -> %.2fx steps/sec\n",
                flagship->label.c_str(), flagship->speedup());
  }

  // Fusion effect: each "+fuse" row against its unfused twin at the same
  // budget — throughput ratio on the compiled path and peak-bytes delta.
  for (const BenchResult& f : results) {
    if (!f.fusion || !f.ran) continue;
    for (const BenchResult& u : results) {
      if (u.fusion || !u.ran || u.label + "+fuse" != f.label ||
          std::abs(u.budget_fraction - f.budget_fraction) > 0.005) {
        continue;
      }
      double tput = u.compiled_steps_per_sec > 0
                        ? f.compiled_steps_per_sec / u.compiled_steps_per_sec
                        : 0;
      double peak_delta =
          u.peak_bytes > 0
              ? 100.0 * (static_cast<double>(u.peak_bytes) -
                         static_cast<double>(f.peak_bytes)) /
                    static_cast<double>(u.peak_bytes)
              : 0;
      std::printf(
          "fusion %-12s %5.0f%%: %zu groups, %zu KiB ephemeral, "
          "%.2fx steps/sec vs unfused, peak %+.1f%% lower\n",
          u.label.c_str(), f.budget_fraction * 100, f.fused_groups,
          f.ephemeral_bytes >> 10, tput, peak_delta);
    }
  }

  std::string json = "{\n  \"benchmark\": \"executor_replay\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"all_match\": " + std::string(all_match ? "true" : "false") +
          ",\n";
  if (flagship != nullptr) {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  \"flagship\": {\"model\": \"%s\", \"budget_fraction\": "
                  "%.2f, \"speedup\": %.2f},\n",
                  flagship->label.c_str(), flagship->budget_fraction,
                  flagship->speedup());
    json += buffer;
  }
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(&json, results[i]);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    bool gate_ok = true;
    std::printf("\nregression gate vs %s:\n", check_path.c_str());
    for (const BenchResult& r : results) {
      if (!r.ran) {
        std::printf("  %-12s %5.0f%%  FAILED to run\n", r.label.c_str(),
                    r.budget_fraction * 100);
        gate_ok = false;
        continue;
      }
      double floor = GateFloor(recorded, r);
      bool ok = r.match() && r.speedup() >= floor;
      const RecordedRow* row =
          FindRecorded(recorded, r.label, r.budget_fraction);
      std::printf("  %-12s %5.0f%%  %.2fx >= %.2fx (recorded %.2fx) %s\n",
                  r.label.c_str(), r.budget_fraction * 100, r.speedup(),
                  floor, row != nullptr ? row->speedup : 0.0,
                  ok ? "ok" : "FAIL");
      gate_ok = gate_ok && ok;
    }
    if (!gate_ok) return 3;
  }
  return all_match ? 0 : 2;
}
