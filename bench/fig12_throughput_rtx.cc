// Paper Fig 12: training throughput (samples/s) vs batch size for four
// models on the TITAN RTX, across every memory-management policy. The
// paper's shape: all policies match Base while memory suffices; under
// over-subscription TSPLIT degrades least (best overlap), vDNN-all pays
// the most transfer, and missing cells mean the policy cannot train that
// batch at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  struct Workload {
    const char* model;
    std::vector<int> batches;
  };
  std::vector<Workload> workloads = {
      {"VGG-16", {64, 128, 256, 384, 512}},
      {"ResNet-50", {64, 128, 256, 512, 1024}},
      {"Inception-V4", {64, 128, 256, 512, 1024}},
      {"Transformer", {64, 128, 256, 384, 512}},
  };
  if (argc > 1) {
    for (auto it = workloads.begin(); it != workloads.end();) {
      it = it->model == std::string(argv[1]) ? it + 1 : workloads.erase(it);
    }
  }

  bench::PrintHeader(
      "Fig 12: throughput (samples/s) vs batch size, TITAN RTX",
      "'-' = not trainable under that policy; 'x' = policy inapplicable");

  for (const Workload& workload : workloads) {
    std::printf("\n[%s]\n%-14s", workload.model, "batch");
    for (int batch : workload.batches) std::printf("%10d", batch);
    std::printf("\n");
    for (const auto& planner : bench::PaperPlannerColumns()) {
      std::printf("%-14s", planner.c_str());
      std::fflush(stdout);
      for (int batch : workload.batches) {
        if (bench::PlannerInapplicable(workload.model, planner)) {
          std::printf("%10s", "x");
          continue;
        }
        runtime::SessionOptions options;
        options.planner_name = planner;
        options.device = sim::TitanRtx();
        auto result =
            runtime::SimulateModel(workload.model, batch, 1.0, options);
        if (result.ok()) {
          std::printf("%10.1f", result->stats.throughput(batch));
        } else {
          std::printf("%10s", "-");
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
