// Paper Table VI: maximum sample scale vs the PyTorch offloading systems
// (ZeRO-Offload and FairScale-Offload), with Adam optimizer state in the
// footprint (the state ZeRO-Offload exists to offload). Paper shape:
// TSPLIT largest; ZeRO-Offload helps least on activation-dominated CNNs.

#include <cstdio>

#include "bench/bench_util.h"
#include "models/model.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::vector<std::string> models = models::PaperModelNames();
  if (argc > 1) models = {argv[1]};
  const std::vector<std::string> planners = {"ZeRO-Offload",
                                             "FairScale-Offload", "TSPLIT"};

  bench::PrintHeader(
      "Table VI: max sample scale vs offloading systems (Adam states "
      "on-footprint), TITAN RTX",
      "paper shape: TSPLIT largest; ZeRO-Offload weakest on CNNs");

  std::printf("%-14s", "Model");
  for (const auto& planner : planners) std::printf("%20s", planner.c_str());
  std::printf("\n");
  for (const auto& model : models) {
    std::printf("%-14s", model.c_str());
    std::fflush(stdout);
    for (const auto& planner : planners) {
      runtime::SessionOptions options;
      options.planner_name = planner;
      options.with_adam_states = true;
      auto max_batch = runtime::MaxSampleScale(model, options);
      if (max_batch.ok()) {
        std::printf("%20d", *max_batch);
      } else {
        std::printf("%20s", "err");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
