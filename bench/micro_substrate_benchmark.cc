// Micro-benchmarks (google-benchmark) for the runtime substrates: the
// best-fit memory pool, the discrete-event timeline, graph scheduling, and
// the planner itself. These guard the "negligible overhead" claims the
// paper makes about its pool (§V-D) and planner.

#include <benchmark/benchmark.h>

#include <random>

#include "graph/schedule.h"
#include "mem/memory_pool.h"
#include "models/model.h"
#include "planner/planner.h"
#include "planner/profile.h"
#include "rewrite/program.h"
#include "sim/timeline.h"

namespace {

using namespace tsplit;

void BM_PoolAllocFree(benchmark::State& state) {
  mem::MemoryPool pool(size_t{1} << 30);
  std::mt19937 rng(42);
  std::uniform_int_distribution<size_t> size_dist(256, 1 << 20);
  std::vector<size_t> live;
  for (auto _ : state) {
    if (live.size() < 256 && (live.empty() || rng() % 2 == 0)) {
      auto offset = pool.Allocate(size_dist(rng));
      if (offset.ok()) live.push_back(*offset);
    } else {
      size_t idx = rng() % live.size();
      benchmark::DoNotOptimize(pool.Free(live[idx]));
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocFree);

void BM_PoolPolicy(benchmark::State& state) {
  auto policy = static_cast<mem::FitPolicy>(state.range(0));
  for (auto _ : state) {
    mem::MemoryPool pool(size_t{256} << 20, policy);
    std::vector<size_t> live;
    for (int i = 0; i < 512; ++i) {
      auto offset = pool.Allocate(static_cast<size_t>(1 + i % 64) << 12);
      if (offset.ok()) live.push_back(*offset);
      if (i % 3 == 0 && !live.empty()) {
        (void)pool.Free(live.back());
        live.pop_back();
      }
    }
    benchmark::DoNotOptimize(pool.stats().fragmentation());
  }
}
BENCHMARK(BM_PoolPolicy)->Arg(0)->Arg(1);  // 0=best-fit, 1=first-fit

void BM_TimelineSchedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline timeline;
    auto compute = timeline.AddStream("compute");
    auto d2h = timeline.AddStream("d2h");
    double last = 0;
    for (int i = 0; i < 1000; ++i) {
      const auto& rec = timeline.Schedule(compute, 1e-4, last);
      timeline.Schedule(d2h, 5e-5, rec.finish);
      last = rec.finish;
    }
    benchmark::DoNotOptimize(timeline.MakespanEnd());
  }
}
BENCHMARK(BM_TimelineSchedule);

void BM_BuildScheduleVgg(benchmark::State& state) {
  auto model = models::BuildVgg(16, {32});
  for (auto _ : state) {
    auto schedule = BuildSchedule(model->graph);
    benchmark::DoNotOptimize(schedule.ok());
  }
}
BENCHMARK(BM_BuildScheduleVgg);

void BM_TsplitPlannerVgg(benchmark::State& state) {
  auto model = models::BuildVgg(16, {static_cast<int>(state.range(0))});
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  for (auto _ : state) {
    auto planner = planner::MakePlanner("TSPLIT");
    auto plan = planner->BuildPlan(model->graph, *schedule, profile,
                                   sim::TitanRtx().memory_bytes * 93 / 100);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_TsplitPlannerVgg)->Arg(128)->Arg(384);

void BM_GenerateProgramVgg(benchmark::State& state) {
  auto model = models::BuildVgg(16, {384});
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  auto planner = planner::MakePlanner("TSPLIT");
  auto plan = planner->BuildPlan(model->graph, *schedule, profile,
                                 sim::TitanRtx().memory_bytes * 93 / 100);
  for (auto _ : state) {
    auto program =
        rewrite::GenerateProgram(model->graph, *schedule, *plan, profile);
    benchmark::DoNotOptimize(program.ok());
  }
}
BENCHMARK(BM_GenerateProgramVgg);

}  // namespace

BENCHMARK_MAIN();
