// Paper Figs 3 & 4 (background walkthrough): the paper's pedagogical
// example — a two-conv network with its backward graph — showing
//   (a) the DFS execution schedule (Algorithm 1, Fig 4a),
//   (b) the per-op memory-requirement curve and live-tensor counts with
//       and without memory optimization (Fig 4b).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/autodiff.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "ops/conv2d.h"
#include "ops/data_movement.h"
#include "ops/softmax.h"
#include "planner/memory_sim.h"
#include "planner/planner.h"

using namespace tsplit;

int main() {
  // Fig 3's graph: X -> Conv1(W1) -> Conv2(W2) -> loss, plus autodiff.
  Graph graph;
  TensorId x = graph.AddTensor("X", Shape{32, 3, 32, 32},
                               TensorKind::kInput);
  TensorId labels = graph.AddTensor("labels", Shape{32},
                                    TensorKind::kInput);
  TensorId w1 = graph.AddTensor("W1", Shape{16, 3, 3, 3},
                                TensorKind::kParameter);
  TensorId w2 = graph.AddTensor("W2", Shape{16, 16, 3, 3},
                                TensorKind::kParameter);
  auto s1 = graph.AddOp(std::make_unique<ops::Conv2dOp>(
                            ops::ConvConfig{1, 1}),
                        "Conv1", {x, w1});
  auto s2 = graph.AddOp(std::make_unique<ops::Conv2dOp>(
                            ops::ConvConfig{1, 1}),
                        "Conv2", {s1->at(0), w2});
  auto flat = graph.AddOp(
      std::make_unique<ops::ReshapeOp>(Shape{32, 16 * 32 * 32}), "flatten",
      {s2->at(0)});
  auto loss = graph.AddOp(std::make_unique<ops::CrossEntropyLossOp>(),
                          "loss", {flat->at(0), labels});
  auto autodiff = BuildBackward(&graph, loss->at(0));
  if (!autodiff.ok()) return 1;

  auto schedule = BuildSchedule(graph);
  if (!schedule.ok()) return 1;

  bench::PrintHeader("Fig 4a: DFS execution schedule (Algorithm 1)",
                     "forward ops first, then the backward graph in "
                     "reverse dependency order");
  for (int pos = 0; pos < schedule->num_steps(); ++pos) {
    const OpNode& node =
        graph.node(schedule->order[static_cast<size_t>(pos)]);
    std::printf("  %2d. %-14s %s\n", pos, node.name.c_str(),
                node.op->is_backward() ? "(backward)" : "");
  }

  bench::PrintHeader(
      "Fig 4b: memory requirement / live tensors per scheduled op",
      "managed = every activation swap-marked (regeneration moves the "
      "bulge to the backward tail)");
  auto live = ComputeLiveness(graph, *schedule);
  MemoryProfile unmanaged = ComputeMemoryProfile(graph, *schedule);

  // Managed variant: swap every evictable forward activation.
  auto facts = planner::ComputeTensorFacts(graph, *schedule);
  planner::Plan plan;
  for (const TensorDesc& t : graph.tensors()) {
    const auto& f = facts[static_cast<size_t>(t.id)];
    if (!f.is_view_alias && !f.always_live &&
        t.kind == TensorKind::kActivation && f.first_bwd_use >= 0 &&
        f.first_bwd_use > f.fwd_last_use) {
      plan.Set(t.id, STensorConfig{MemOpt::kSwap, {}});
    }
  }
  auto managed = planner::PlannedMemory(graph, *schedule, facts, plan);

  std::printf("%4s %-14s %14s %14s %8s\n", "pos", "op", "unmanaged MB",
              "managed MB", "#live");
  for (int pos = 0; pos < schedule->num_steps(); ++pos) {
    int live_count = 0;
    for (const TensorLiveness& l : live) {
      if (!l.is_view_alias && l.LiveAt(pos)) ++live_count;
    }
    const OpNode& node =
        graph.node(schedule->order[static_cast<size_t>(pos)]);
    std::printf("%4d %-14s %14.1f %14.1f %8d\n", pos, node.name.c_str(),
                unmanaged.per_op_bytes[static_cast<size_t>(pos)] / 1e6,
                managed[static_cast<size_t>(pos)] / 1e6, live_count);
  }
  std::printf(
      "\npeak: unmanaged %.1f MB at pos %d; managed %.1f MB — the eviction\n"
      "gap between the forward bulge and the backward regeneration is the\n"
      "memory TSPLIT's strategies trade against time (Eq. 1).\n",
      unmanaged.peak_bytes / 1e6, unmanaged.peak_pos,
      *std::max_element(managed.begin(), managed.end()) / 1e6);
  return 0;
}
