// google-benchmark micro-benchmarks for the CPU reference kernels (the
// functional executor's compute substrate) and the split/merge tensor
// primitives.

#include <benchmark/benchmark.h>

#include "core/tensor.h"
#include "ops/batchnorm.h"
#include "ops/conv2d.h"
#include "ops/matmul.h"
#include "ops/softmax.h"

namespace {

using namespace tsplit;

Tensor Filled(Shape shape) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.at(i) = 0.01f * static_cast<float>(i % 97);
  }
  return t;
}

void BM_Conv2dKernel(benchmark::State& state) {
  auto n = state.range(0);
  ops::Conv2dOp conv({1, 1});
  Tensor x = Filled(Shape{n, 8, 16, 16});
  Tensor w = Filled(Shape{8, 8, 3, 3});
  Tensor y(Shape{n, 8, 16, 16});
  std::vector<const Tensor*> inputs = {&x, &w};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Compute(inputs, outputs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Conv2dKernel)->Arg(1)->Arg(4)->Arg(16);

void BM_MatMulKernel(benchmark::State& state) {
  auto dim = state.range(0);
  ops::MatMulOp matmul;
  Tensor a = Filled(Shape{dim, dim});
  Tensor b = Filled(Shape{dim, dim});
  Tensor y(Shape{dim, dim});
  std::vector<const Tensor*> inputs = {&a, &b};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul.Compute(inputs, outputs));
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
}
BENCHMARK(BM_MatMulKernel)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxKernel(benchmark::State& state) {
  ops::SoftmaxOp softmax;
  Tensor x = Filled(Shape{512, 512});
  Tensor y(Shape{512, 512});
  std::vector<const Tensor*> inputs = {&x};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax.Compute(inputs, outputs));
  }
}
BENCHMARK(BM_SoftmaxKernel);

void BM_BatchNormKernel(benchmark::State& state) {
  ops::BatchNorm2dOp bn;
  Tensor x = Filled(Shape{16, 32, 16, 16});
  Tensor gamma = Filled(Shape{32});
  Tensor beta = Filled(Shape{32});
  Tensor y(Shape{16, 32, 16, 16});
  std::vector<const Tensor*> inputs = {&x, &gamma, &beta};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.Compute(inputs, outputs));
  }
}
BENCHMARK(BM_BatchNormKernel);

void BM_TensorSliceMerge(benchmark::State& state) {
  // The split/merge primitives of the functional executor.
  Tensor whole = Filled(Shape{64, 64, 8, 8});
  for (auto _ : state) {
    Tensor rebuilt(whole.shape());
    for (int part = 0; part < 4; ++part) {
      auto slice = whole.Slice(0, part * 16, 16);
      benchmark::DoNotOptimize(slice.ok());
      benchmark::DoNotOptimize(
          rebuilt.PasteSlice(0, part * 16, *slice).ok());
    }
  }
}
BENCHMARK(BM_TensorSliceMerge);

}  // namespace

BENCHMARK_MAIN();
