// Ablations over TSPLIT's design choices (DESIGN.md §6):
//   1. recomputation engine: memory-centric O(1)-memory vs speed-centric
//      O(N)-memory vs the LRU hybrid (paper §V-D);
//   2. memory-pool fit policy: best-fit (paper §V-C) vs first-fit;
//   3. greedy metric: the planner's ΔT/ΔM ratio is exercised implicitly —
//      TSPLIT-nosplit isolates the split mechanism (see fig14a).

#include <cstdio>
#include <random>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "mem/memory_pool.h"
#include "models/model.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/sim_executor.h"

using namespace tsplit;

int main() {
  bench::PrintHeader(
      "Ablation 1: recomputation engines on a checkpointed VGG-16 "
      "(batch 96, TITAN RTX)",
      "memory-centric trades recompute time for O(1) extra memory; LRU "
      "interpolates");

  {
    models::CnnConfig config;
    config.batch = 96;
    auto model = models::BuildVgg(16, config);
    auto schedule = BuildSchedule(model->graph);
    auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
    auto plan = planner::MakePlanner("Checkpoints")
                    ->BuildPlan(model->graph, *schedule, profile, 1);

    std::printf("%-18s %12s %14s %12s\n", "engine", "iter (s)",
                "recompute (s)", "peak GB");
    struct Mode {
      const char* name;
      rewrite::RecomputeMode mode;
      size_t lru_budget;
    };
    for (const Mode& m :
         {Mode{"memory-centric", rewrite::RecomputeMode::kMemoryCentric, 0},
          Mode{"speed-centric", rewrite::RecomputeMode::kSpeedCentric, 0},
          Mode{"LRU (1 GB)", rewrite::RecomputeMode::kLru,
               size_t{1} << 30}}) {
      rewrite::ProgramOptions options;
      options.recompute_mode = m.mode;
      options.lru_budget_bytes = m.lru_budget;
      auto program = rewrite::GenerateProgram(model->graph, *schedule, *plan,
                                              profile, options);
      if (!program.ok()) continue;
      runtime::SimExecutor executor(sim::TitanRtx());
      auto stats = executor.Execute(model->graph, *program);
      if (!stats.ok()) {
        std::printf("%-18s %12s\n", m.name, "OOM");
        continue;
      }
      std::printf("%-18s %12.3f %14.3f %12.2f\n", m.name,
                  stats->iteration_seconds, stats->recompute_seconds,
                  static_cast<double>(stats->peak_memory_bytes) / 1e9);
    }
  }

  bench::PrintHeader(
      "Ablation 2: best-fit vs first-fit pool under an adversarial "
      "alloc/free trace",
      "the paper picks best-fit for micro-tensor contiguity (§V-C)");
  {
    std::printf("%-12s %16s %14s\n", "policy", "fragmentation",
                "failed allocs");
    for (auto policy : {mem::FitPolicy::kBestFit, mem::FitPolicy::kFirstFit}) {
      mem::MemoryPool pool(size_t{64} << 20, policy);
      std::mt19937 rng(7);
      std::vector<size_t> live;
      double frag_accum = 0;
      int samples = 0;
      for (int step = 0; step < 20000; ++step) {
        bool alloc = live.empty() || rng() % 5 != 0;
        if (alloc) {
          size_t bytes = (rng() % 2 == 0) ? (1u << 12) + rng() % (1u << 14)
                                          : (1u << 18) + rng() % (1u << 19);
          auto offset = pool.Allocate(bytes);
          if (offset.ok()) live.push_back(*offset);
        } else {
          size_t idx = rng() % live.size();
          (void)pool.Free(live[idx]);
          live.erase(live.begin() + static_cast<long>(idx));
        }
        if (step % 100 == 0) {
          frag_accum += pool.stats().fragmentation();
          ++samples;
        }
      }
      std::printf("%-12s %15.1f%% %14zu\n",
                  policy == mem::FitPolicy::kBestFit ? "best-fit"
                                                     : "first-fit",
                  100.0 * frag_accum / samples, pool.stats().failed_allocs);
    }
  }
  return 0;
}
