// Paper Table V: maximum PARAMETER scale at a fixed batch of 16 — channel
// multiplier for CNNs, hidden-size multiplier for the Transformer. TSPLIT's
// parameter-dimension splits let it scale model width past every baseline.

#include <cstdio>

#include "bench/bench_util.h"
#include "models/model.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::vector<std::string> models = models::PaperModelNames();
  if (argc > 1) models = {argv[1]};

  bench::PrintHeader(
      "Table V: max parameter scale (channel/hidden multiplier), batch 16, "
      "TITAN RTX",
      "paper shape: TSPLIT largest everywhere; 'x' = policy inapplicable");

  std::printf("%-14s", "Model");
  for (const auto& planner : bench::PaperPlannerColumns()) {
    std::printf("%14s", planner.c_str());
  }
  std::printf("\n");

  for (const auto& model : models) {
    std::printf("%-14s", model.c_str());
    std::fflush(stdout);
    for (const auto& planner : bench::PaperPlannerColumns()) {
      if (bench::PlannerInapplicable(model, planner)) {
        std::printf("%14s", "x");
        std::fflush(stdout);
        continue;
      }
      runtime::SessionOptions options;
      options.planner_name = planner;
      options.device = sim::TitanRtx();
      auto max_scale = runtime::MaxParamScale(model, options);
      if (max_scale.ok()) {
        std::printf("%13dx", *max_scale);
      } else {
        std::printf("%14s", "err");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
