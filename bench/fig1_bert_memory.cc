// Paper Fig 1: memory requirement of BERT-Large (24-layer Transformer)
// across the model-scale grid (sample scale x parameter scale), and the
// trainability frontier of mainstream GPUs — each cell is trainable on a
// device iff its requirement fits the device memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"

using namespace tsplit;

int main() {
  const std::vector<int> batches = {4, 8, 16, 32, 64};
  const std::vector<int> hiddens = {768, 1024, 1280, 1536, 2048};
  const std::vector<sim::DeviceProfile> devices = {
      sim::Gtx1080Ti(), sim::TeslaP100(), sim::TitanRtx(), sim::TeslaV100()};

  bench::PrintHeader(
      "Fig 1: BERT-Large training memory (GB) vs model scale "
      "(batch x hidden)",
      "markers: letters = largest device the cell still fits "
      "(t=1080Ti 11G, p=P100 16G, r=RTX 24G, v=V100 32G, !=none)");

  std::printf("%-8s", "batch");
  for (int hidden : hiddens) std::printf("%12d", hidden);
  std::printf("\n");

  for (int batch : batches) {
    std::printf("%-8d", batch);
    std::fflush(stdout);
    for (int hidden : hiddens) {
      auto model = models::BuildBertLarge(batch, hidden);
      if (!model.ok()) {
        std::printf("%12s", "err");
        continue;
      }
      auto schedule = BuildSchedule(model->graph);
      if (!schedule.ok()) {
        std::printf("%12s", "err");
        continue;
      }
      MemoryProfile profile =
          ComputeMemoryProfile(model->graph, *schedule);
      double gb = static_cast<double>(profile.peak_bytes) / 1e9;
      char marker = '!';
      // Largest device whose memory the unmanaged footprint fits in.
      const char* letters = "tprv";
      for (size_t d = 0; d < devices.size(); ++d) {
        if (profile.peak_bytes <= devices[d].memory_bytes) {
          marker = letters[d];
          break;
        }
      }
      std::printf("%10.1f %c", gb, marker);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe diagonal frontier reproduces Fig 1: model scale outgrows every\n"
      "mainstream device without memory management.\n");
  return 0;
}
