// Paper Fig 14a (breakdown): the effect of the tensor-split mechanism.
// Fixing a throughput floor (>= x% of Base's throughput at its own max
// batch), compare the largest trainable batch of SuperNeurons, TSPLIT
// without split, and full TSPLIT. The split mechanism buys most of the
// additional scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/session.h"

using namespace tsplit;

namespace {

// Base's throughput at a reference batch defines the floor.
double BaseThroughput(const std::string& model) {
  runtime::SessionOptions options;
  options.planner_name = "Base";
  for (int batch = 128; batch >= 16; batch /= 2) {
    auto result = runtime::SimulateModel(model, batch, 1.0, options);
    if (result.ok()) return result->stats.throughput(batch);
  }
  return 0;
}

// Largest batch whose throughput stays above `floor` samples/s. The
// throughput-vs-batch curve rises (amortized launch overhead) then falls
// (memory-management cost), so scan down from the largest trainable batch.
int MaxBatchAboveFloor(const std::string& model, const std::string& planner,
                       double floor) {
  runtime::SessionOptions options;
  options.planner_name = planner;
  auto cap = runtime::MaxSampleScale(model, options);
  if (!cap.ok() || *cap < 1) return 0;
  auto ok_at = [&](int batch) {
    auto result = runtime::SimulateModel(model, batch, 1.0, options);
    return result.ok() && result->stats.throughput(batch) >= floor;
  };
  for (int batch = *cap; batch >= 1;
       batch = batch > 16 ? batch * 92 / 100 : batch - 1) {
    if (ok_at(batch)) return batch;
  }
  return 0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 14a: max batch sustaining >= x% of Base throughput, TITAN RTX",
      "paper shape: TSPLIT > TSPLIT w/o Split > SuperNeurons at every "
      "floor");

  std::printf("%-12s %-6s %14s %16s %10s\n", "Model", "floor",
              "SuperNeurons", "TSPLIT-nosplit", "TSPLIT");
  for (const char* model : {"VGG-16", "ResNet-101"}) {
    double base = BaseThroughput(model);
    for (double fraction : {0.45, 0.35}) {
      double floor = base * fraction;
      std::printf("%-12s %5.0f%%", model, fraction * 100);
      std::fflush(stdout);
      for (const char* planner :
           {"SuperNeurons", "TSPLIT-nosplit", "TSPLIT"}) {
        int batch = MaxBatchAboveFloor(model, planner, floor);
        std::printf("%*d", planner == std::string("TSPLIT") ? 10
                           : planner == std::string("SuperNeurons") ? 14
                                                                    : 16,
                    batch);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
