// Benchmarks for the parallel execution substrate: serial vs multi-thread
// kernels (the ParallelFor thread pool) and sync vs async swap execution
// (the background copy engine) on a swap-heavy augmented program.
//
// The thread-count argument maps through core::SetNumThreads, so
//   BM_MatMulRank3Threads/1   = forced-serial baseline
//   BM_MatMulRank3Threads/4   = 4 worker threads
// On a single-core host the parallel rows measure pool overhead only.

#include <benchmark/benchmark.h>

#include "core/parallel.h"
#include "core/tensor.h"
#include "models/model.h"
#include "ops/conv2d.h"
#include "ops/matmul.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/functional_executor.h"
#include "runtime/interpreter.h"

namespace {

using namespace tsplit;

Tensor Filled(Shape shape) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.at(i) = 0.01f * static_cast<float>(i % 97);
  }
  return t;
}

void BM_MatMulRank3Threads(benchmark::State& state) {
  core::SetNumThreads(static_cast<int>(state.range(0)));
  ops::MatMulOp matmul;
  Tensor a = Filled(Shape{8, 192, 192});
  Tensor b = Filled(Shape{8, 192, 192});
  Tensor y(Shape{8, 192, 192});
  std::vector<const Tensor*> inputs = {&a, &b};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul.Compute(inputs, outputs));
  }
  core::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * 8 * 192 * 192 * 192);
}
BENCHMARK(BM_MatMulRank3Threads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dThreads(benchmark::State& state) {
  core::SetNumThreads(static_cast<int>(state.range(0)));
  ops::Conv2dOp conv({1, 1});
  Tensor x = Filled(Shape{8, 16, 32, 32});
  Tensor w = Filled(Shape{16, 16, 3, 3});
  Tensor y(Shape{8, 16, 32, 32});
  std::vector<const Tensor*> inputs = {&x, &w};
  std::vector<Tensor*> outputs = {&y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Compute(inputs, outputs));
  }
  core::SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Conv2dThreads)->Arg(1)->Arg(2)->Arg(4);

// Sync vs async swap on a vDNN-all program (every op's inputs swapped out
// after use and prefetched back): arg 0 = synchronous swaps, arg 1 = the
// background copy engine overlapping D2H/H2D with compute.
void BM_ExecutorSwapHeavy(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  models::CnnConfig config;
  config.batch = 8;
  config.image_size = 16;
  config.num_classes = 4;
  config.channel_scale = 16.0 / 64.0;
  auto model = models::BuildVgg(16, config);
  if (!model.ok()) {
    state.SkipWithError("model build failed");
    return;
  }
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  auto planner = planner::MakePlanner("vDNN-all");
  auto plan = planner->BuildPlan(model->graph, *schedule, profile, 1);
  auto program =
      rewrite::GenerateProgram(model->graph, *schedule, *plan, profile);
  if (!program.ok()) {
    state.SkipWithError("program generation failed");
    return;
  }
  auto bindings = runtime::MakeRandomBindings(model->graph, 11);
  for (auto _ : state) {
    runtime::FunctionalExecutor executor(&model->graph, size_t{1} << 30);
    executor.set_async_swap(async);
    executor.set_keep_freed_values(false);
    for (const auto& [id, value] : bindings) {
      if (!executor.Bind(id, value).ok()) {
        state.SkipWithError("bind failed");
        return;
      }
    }
    Status status = executor.Run(*program);
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(executor.peak_device_bytes());
  }
}
BENCHMARK(BM_ExecutorSwapHeavy)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
