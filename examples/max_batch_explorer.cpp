// Interactive scale explorer: how large a batch can each policy train, and
// what does throughput look like on the way up?
//
//   $ ./example_max_batch_explorer [model] [device] [planner...]
//   $ ./example_max_batch_explorer VGG-16 rtx TSPLIT vDNN-all
//
// model:  VGG-16 | VGG-19 | ResNet-50 | ResNet-101 | Inception-V4 |
//         Transformer
// device: rtx (24 GB) | 1080ti (11 GB)

#include <cstdio>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::string model = argc > 1 ? argv[1] : "VGG-16";
  std::string device_name = argc > 2 ? argv[2] : "rtx";
  std::vector<std::string> planners;
  for (int i = 3; i < argc; ++i) planners.push_back(argv[i]);
  if (planners.empty()) planners = {"Base", "SuperNeurons", "TSPLIT"};

  sim::DeviceProfile device =
      device_name == "1080ti" ? sim::Gtx1080Ti() : sim::TitanRtx();
  std::printf("model %s on %s (%.0f GB)\n\n", model.c_str(),
              device.name.c_str(),
              static_cast<double>(device.memory_bytes) / 1e9);

  for (const std::string& planner : planners) {
    runtime::SessionOptions options;
    options.planner_name = planner;
    options.device = device;
    auto max_batch = runtime::MaxSampleScale(model, options);
    if (!max_batch.ok()) {
      std::printf("%-14s error: %s\n", planner.c_str(),
                  max_batch.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s max batch %d\n", planner.c_str(), *max_batch);
    // Throughput curve at a few points up to the max.
    for (int fraction : {25, 50, 75, 100}) {
      int batch = std::max(1, *max_batch * fraction / 100);
      auto result = runtime::SimulateModel(model, batch, 1.0, options);
      if (!result.ok()) continue;
      std::printf("    batch %5d: %8.1f samples/s, peak %5.1f GB, "
                  "PCIe %4.0f%%, recompute %.3fs\n",
                  batch, result->stats.throughput(batch),
                  static_cast<double>(result->stats.peak_memory_bytes) / 1e9,
                  100.0 * result->stats.pcie_utilization,
                  result->stats.recompute_seconds);
    }
  }
  return 0;
}
