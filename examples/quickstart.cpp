// Quickstart: plan and simulate one training iteration of VGG-16 under
// memory over-subscription, then verify the plan is semantically lossless
// by replaying it with real tensors.
//
//   $ ./example_quickstart
//
// Walks the whole public pipeline:
//   model -> schedule -> profile -> TSPLIT plan -> augmented program
//         -> discrete-event simulation  (timing / memory)
//         -> functional replay          (numerics)

#include <cstdio>

#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/model.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/functional_executor.h"
#include "runtime/interpreter.h"
#include "runtime/session.h"

using namespace tsplit;

int main() {
  // ---- 1. Build a training graph (forward + autodiff backward). ----
  models::CnnConfig config;
  config.batch = 96;
  auto model = models::BuildVgg(16, config);
  if (!model.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("VGG-16 training graph: %d ops, %d tensors\n",
              model->graph.num_ops(), model->graph.num_tensors());

  auto schedule = BuildSchedule(model->graph);
  MemoryProfile baseline = ComputeMemoryProfile(model->graph, *schedule);
  std::printf("unmanaged peak memory: %.1f GB\n",
              static_cast<double>(baseline.peak_bytes) / 1e9);

  // ---- 2. Simulate on a GPU with HALF the required memory. ----
  runtime::SessionOptions options;
  options.planner_name = "TSPLIT";
  options.device = sim::WithMemory(sim::TitanRtx(), baseline.peak_bytes / 2);
  auto result = runtime::SimulateIteration(&*model, options);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nTSPLIT at 50%% memory: iteration %.3fs, peak %.1f GB, "
      "%.2f GB swapped, %.3fs recomputed, %d micro-kernels\n",
      result->stats.iteration_seconds,
      static_cast<double>(result->stats.peak_memory_bytes) / 1e9,
      static_cast<double>(result->stats.swap_out_bytes) / 1e9,
      result->stats.recompute_seconds, result->stats.num_micro_computes);
  std::printf("plan: %d swapped, %d recomputed, %d split tensors\n",
              result->plan.CountOpt(MemOpt::kSwap),
              result->plan.CountOpt(MemOpt::kRecompute),
              result->plan.CountSplit());

  // ---- 3. Prove the plan is lossless on a tiny functional replica. ----
  models::CnnConfig tiny_config;
  tiny_config.batch = 4;
  tiny_config.image_size = 16;
  tiny_config.num_classes = 3;
  tiny_config.channel_scale = 4.0 / 64.0;
  auto tiny = models::BuildVgg(16, tiny_config);
  auto tiny_schedule = BuildSchedule(tiny->graph);
  auto tiny_profile = planner::ProfileGraph(tiny->graph, options.device);
  MemoryProfile tiny_baseline =
      ComputeMemoryProfile(tiny->graph, *tiny_schedule);

  auto planner = planner::MakePlanner("TSPLIT");
  auto tiny_plan = planner->BuildPlan(
      tiny->graph, *tiny_schedule, tiny_profile,
      tiny_baseline.always_live_bytes +
          tiny->graph.BytesOfKind(TensorKind::kParamGrad) +
          (tiny_baseline.peak_bytes - tiny_baseline.always_live_bytes) / 2);
  if (!tiny_plan.ok()) {
    std::fprintf(stderr, "tiny plan failed: %s\n",
                 tiny_plan.status().ToString().c_str());
    return 1;
  }
  auto program = rewrite::GenerateProgram(tiny->graph, *tiny_schedule,
                                          *tiny_plan, tiny_profile);

  auto bindings = runtime::MakeRandomBindings(tiny->graph, 1);
  runtime::Interpreter reference(&tiny->graph);
  runtime::FunctionalExecutor replay(&tiny->graph, size_t{1} << 30);
  for (const auto& [id, value] : bindings) {
    (void)reference.Bind(id, value);
    (void)replay.Bind(id, value);
  }
  (void)reference.Run();
  Status replay_status = replay.Run(*program);
  if (!replay_status.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay_status.ToString().c_str());
    return 1;
  }
  float expected = (*reference.ValueOf(tiny->loss))->at(0);
  float actual = replay.ValueOf(tiny->loss)->at(0);
  std::printf(
      "\nfunctional check: interpreter loss %.6f vs managed replay %.6f "
      "(%s)\n",
      expected, actual,
      std::abs(expected - actual) < 1e-4 ? "MATCH" : "MISMATCH");
  return 0;
}
