// Trace exporter: simulate one iteration under a chosen planner and write
// a Chrome-trace JSON of the compute / D2H / H2D streams. Open the file in
// chrome://tracing or ui.perfetto.dev to see kernels overlapping transfers
// (TSPLIT) vs serialized stalls (naive policies).
//
//   $ ./example_export_trace VGG-16 256 TSPLIT /tmp/tsplit_trace.json

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/schedule.h"
#include "models/model.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/compiled_program.h"
#include "runtime/sim_executor.h"
#include "runtime/trace.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::string model_name = argc > 1 ? argv[1] : "VGG-16";
  int batch = argc > 2 ? std::atoi(argv[2]) : 256;
  std::string planner_name = argc > 3 ? argv[3] : "TSPLIT";
  std::string path = argc > 4 ? argv[4] : "trace.json";

  auto model = models::BuildByName(model_name, batch, 1.0, true);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  auto planner = planner::MakePlanner(planner_name);
  if (planner == nullptr) {
    std::fprintf(stderr, "unknown planner %s\n", planner_name.c_str());
    return 1;
  }
  size_t budget = sim::TitanRtx().memory_bytes * 93 / 100;
  auto plan = planner->BuildPlan(model->graph, *schedule, profile, budget);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto program =
      rewrite::GenerateProgram(model->graph, *schedule, *plan, profile);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  sim::Timeline timeline;
  runtime::SimExecutor executor(sim::TitanRtx());
  auto stats = executor.Execute(model->graph, *program, &timeline);
  if (!stats.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  // Also lower the program through the compiled-executor pass pipeline so
  // the trace carries one instant event per pass (wall time, instruction /
  // slot / static-byte deltas). The artifact itself is discarded — the sim
  // replay above is the timed run.
  runtime::CompileOptions copts;
  copts.pool_capacity = budget;
  copts.autotune_lookahead = true;
  copts.freed_values_unobservable = true;
  auto compiled =
      runtime::CompiledProgram::Compile(model->graph, *program, copts);
  const std::vector<runtime::PassStats>* pass_stats =
      compiled.ok() ? &compiled->pass_stats : nullptr;

  // Fused-group instant events: one per super-op, naming the member chain
  // and the ephemeral bytes its interiors keep out of the pool.
  std::vector<runtime::FusedGroupInfo> fusion =
      runtime::FusionGroupInfos(model->graph, *plan);
  if (!runtime::WriteChromeTrace(timeline, path, &stats->memory_timeline,
                                 &plan->stats, pass_stats,
                                 fusion.empty() ? nullptr : &fusion)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "%s batch %d under %s: iteration %.3fs, %zu timeline events -> %s\n"
      "open in chrome://tracing or https://ui.perfetto.dev\n",
      model_name.c_str(), batch, planner_name.c_str(),
      stats->iteration_seconds, timeline.tasks().size(), path.c_str());
  if (plan->stats.Populated()) {
    std::printf("planner: %s\n", plan->stats.ToString().c_str());
  }
  if (pass_stats != nullptr) {
    for (const runtime::PassStats& p : *pass_stats) {
      if (!p.changed) continue;
      std::printf("compiled pass %s: %s\n", p.name.c_str(), p.note.c_str());
    }
  }
  for (const runtime::FusedGroupInfo& g : fusion) {
    std::printf("fused group %d: %s (%zu interior, %zu KiB ephemeral)\n",
                g.group, g.members.c_str(), g.interior_count,
                g.ephemeral_bytes >> 10);
  }
  return 0;
}
