// End-to-end TRAINING under memory pressure: a small CNN learns a synthetic
// classification task while every iteration executes through a TSPLIT
// augmented program on a capacity-limited device — real tensors, real
// gradients, real SGD. The loss must fall exactly as it would without any
// memory management.
//
//   $ ./example_train_under_pressure [steps]

#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "graph/liveness.h"
#include "graph/schedule.h"
#include "models/builder_util.h"
#include "models/model.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/functional_executor.h"
#include "runtime/optimizer.h"
#include "runtime/interpreter.h"

using namespace tsplit;

namespace {

// Synthetic task: the class is the channel with the largest mean intensity
// (a brightness-dominant-color task a GAP conv-net learns quickly).
void FillBatch(Tensor* images, Tensor* labels, uint64_t seed) {
  uint64_t state = seed * 6364136223846793005ULL + 1;
  auto uniform = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<float>((state >> 11) * (1.0 / 9007199254740992.0));
  };
  int64_t batch = images->shape().dim(0);
  int64_t channels = images->shape().dim(1);
  int64_t spatial = images->shape().dim(2) * images->shape().dim(3);
  for (int64_t b = 0; b < batch; ++b) {
    auto hot = static_cast<int64_t>(uniform() * channels);
    hot = std::min(hot, channels - 1);
    for (int64_t c = 0; c < channels; ++c) {
      float bias = c == hot ? 0.8f : -0.2f;
      for (int64_t i = 0; i < spatial; ++i) {
        images->at((b * channels + c) * spatial + i) =
            bias + uniform() * 0.6f - 0.3f;
      }
    }
    labels->at(b) = static_cast<float>(hot);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int steps = argc > 1 ? std::atoi(argv[1]) : 60;

  // Small conv net (activation-heavy relative to its parameters).
  models::Model model;
  model.name = "pressure-cnn";
  model.input = model.graph.AddTensor("images", Shape{16, 3, 12, 12},
                                      TensorKind::kInput);
  model.labels =
      model.graph.AddTensor("labels", Shape{16}, TensorKind::kInput);
  models::internal::LayerBuilder builder(&model);
  TensorId x = model.input;
  for (int i = 0; i < 3; ++i) {
    x = builder.Relu(builder.Conv(x, 8, 3, 1, 1, "conv" + std::to_string(i)),
                     "relu" + std::to_string(i));
  }
  x = builder.AvgPool(x, 12, 1, 0, "gap");
  x = builder.Flatten2d(x, "flatten");
  TensorId logits = builder.Linear(x, 3, "head");
  model.loss = builder.CrossEntropy(logits, model.labels, "loss");
  auto finished = models::internal::FinishModel(std::move(model), true);
  if (!finished.ok()) return 1;
  models::Model net = std::move(*finished);

  // Plan once at 45% of the activation peak.
  auto schedule = BuildSchedule(net.graph);
  auto profile = planner::ProfileGraph(net.graph, sim::TitanRtx());
  MemoryProfile baseline = ComputeMemoryProfile(net.graph, *schedule);
  size_t floor = baseline.always_live_bytes +
                 net.graph.BytesOfKind(TensorKind::kParamGrad);
  size_t budget =
      floor + static_cast<size_t>((baseline.peak_bytes - floor) * 0.45);
  auto planner = planner::MakePlanner("TSPLIT");
  auto plan = planner->BuildPlan(net.graph, *schedule, profile, budget);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto program =
      rewrite::GenerateProgram(net.graph, *schedule, *plan, profile);
  std::printf(
      "budget %.0f KB of %.0f KB peak; plan: %d swap / %d recompute / %d "
      "split\n\n",
      budget / 1e3, baseline.peak_bytes / 1e3,
      plan->CountOpt(MemOpt::kSwap), plan->CountOpt(MemOpt::kRecompute),
      plan->CountSplit());

  // Parameters persist across steps; inputs change per batch.
  std::unordered_map<TensorId, Tensor> params;
  auto initial = runtime::MakeRandomBindings(net.graph, 99);
  for (TensorId id : net.parameters) params[id] = initial.at(id);

  runtime::SgdOptimizer optimizer(/*lr=*/0.05f, /*momentum=*/0.9f);
  for (int step = 0; step < steps; ++step) {
    Tensor images(net.graph.tensor(net.input).shape);
    Tensor labels(net.graph.tensor(net.labels).shape);
    FillBatch(&images, &labels, static_cast<uint64_t>(step) + 7);

    runtime::FunctionalExecutor executor(&net.graph, budget + budget / 4);
    for (const auto& [id, value] : params) (void)executor.Bind(id, value);
    (void)executor.Bind(net.input, images);
    (void)executor.Bind(net.labels, labels);
    Status run = executor.Run(*program);
    if (!run.ok()) {
      std::fprintf(stderr, "step %d failed: %s\n", step,
                   run.ToString().c_str());
      return 1;
    }

    std::unordered_map<TensorId, Tensor> grads;
    for (auto [param, grad] : net.autodiff.param_grads) {
      auto value = executor.ValueOf(grad);
      if (value.ok()) grads[param] = std::move(*value);
    }
    (void)optimizer.Step(&params, grads);

    if (step % 10 == 0 || step == steps - 1) {
      std::printf("step %3d  loss %.4f\n", step,
                  executor.ValueOf(net.loss)->at(0));
    }
  }
  std::printf(
      "\nThe network trained entirely through swap/recompute/split-managed "
      "memory.\n");
  return 0;
}
