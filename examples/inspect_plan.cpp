// Plan inspector: shows exactly WHAT a planner decided for a workload —
// per-tensor memory options, split configs, and the augmented program's
// step mix. Useful for understanding why TSPLIT beats whole-tensor
// policies on a given model.
//
//   $ ./example_inspect_plan [model] [batch] [planner]
//   $ ./example_inspect_plan Transformer 512 TSPLIT

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "graph/schedule.h"
#include "planner/analyzer.h"
#include "models/model.h"
#include "planner/planner.h"
#include "rewrite/program.h"
#include "runtime/session.h"

using namespace tsplit;

int main(int argc, char** argv) {
  std::string model_name = argc > 1 ? argv[1] : "VGG-16";
  int batch = argc > 2 ? std::atoi(argv[2]) : 256;
  std::string planner_name = argc > 3 ? argv[3] : "TSPLIT";

  auto model = models::BuildByName(model_name, batch, 1.0, true);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto schedule = BuildSchedule(model->graph);
  auto profile = planner::ProfileGraph(model->graph, sim::TitanRtx());
  auto planner = planner::MakePlanner(planner_name);
  if (planner == nullptr) {
    std::fprintf(stderr, "unknown planner %s\n", planner_name.c_str());
    return 1;
  }
  auto plan = planner->BuildPlan(model->graph, *schedule, profile,
                                 sim::TitanRtx().memory_bytes * 93 / 100);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  std::printf("%s, batch %d, planner %s\n", model_name.c_str(), batch,
              planner_name.c_str());
  std::printf("decisions: %d swap (%.2f GB), %d recompute (%.2f GB), "
              "%d split tensors\n\n",
              plan->CountOpt(MemOpt::kSwap),
              static_cast<double>(
                  plan->BytesWithOpt(model->graph, MemOpt::kSwap)) / 1e9,
              plan->CountOpt(MemOpt::kRecompute),
              static_cast<double>(
                  plan->BytesWithOpt(model->graph, MemOpt::kRecompute)) / 1e9,
              plan->CountSplit());

  // The ten largest managed tensors.
  std::vector<std::pair<size_t, TensorId>> managed;
  for (const auto& [id, config] : plan->configs) {
    if (config.opt == MemOpt::kReside && !config.split.active()) continue;
    managed.emplace_back(model->graph.tensor(id).size_bytes(), id);
  }
  std::sort(managed.rbegin(), managed.rend());
  std::printf("largest managed tensors:\n");
  for (size_t i = 0; i < std::min<size_t>(10, managed.size()); ++i) {
    const TensorDesc& t = model->graph.tensor(managed[i].second);
    std::printf("  %-28s %8.1f MB  %s\n", t.name.c_str(),
                static_cast<double>(managed[i].first) / 1e6,
                plan->ConfigFor(t.id).ToString().c_str());
  }

  // Structured analysis (Fig 14a/14b quantities).
  auto schedule_ref = *schedule;
  planner::PlanReport report =
      planner::AnalyzePlan(model->graph, schedule_ref, profile, *plan);
  std::printf("\n%s", report.ToString().c_str());

  // Augmented-program composition.
  auto program =
      rewrite::GenerateProgram(model->graph, *schedule, *plan, profile);
  if (program.ok()) {
    std::map<std::string, int> step_mix;
    for (const auto& step : program->steps) {
      ++step_mix[rewrite::StepKindToString(step.kind)];
    }
    std::printf("\naugmented program: %zu steps (graph had %d ops)\n",
                program->steps.size(), model->graph.num_ops());
    for (const auto& [kind, count] : step_mix) {
      std::printf("  %-12s %6d\n", kind.c_str(), count);
    }
  }
  return 0;
}
